package eval

import (
	"strings"
	"testing"
	"time"

	"caribou/internal/region"
	"caribou/internal/workloads"
)

func TestTable1MatchesWorkloads(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	if !byName["text2speech-censoring"].Sync || !byName["text2speech-censoring"].Cond {
		t.Error("text2speech features wrong")
	}
	if !byName["video-analytics"].Sync || byName["video-analytics"].Cond {
		t.Error("video-analytics features wrong")
	}
	if byName["dna-visualization"].Stages != 1 {
		t.Error("dna stages wrong")
	}
	var sb strings.Builder
	PrintTable1(&sb, rows)
	if !strings.Contains(sb.String(), "dna-visualization") {
		t.Error("print output missing rows")
	}
}

func TestTable2CaribouRow(t *testing.T) {
	rows := Table2()
	var caribou *Table2Row
	for i := range rows {
		if rows[i].Framework == "Caribou" {
			caribou = &rows[i]
		}
	}
	if caribou == nil {
		t.Fatal("Caribou row missing")
	}
	// The implementation must actually have every capability the row
	// claims; the structural ones are checkable here.
	if !caribou.DynMigration || !caribou.Geospatial || !caribou.MultiStage ||
		!caribou.ControlFlow || !caribou.SyncNodes || !caribou.TxOverhead {
		t.Errorf("Caribou capabilities incomplete: %+v", caribou)
	}
	if caribou.Granularity != "fine" {
		t.Errorf("granularity = %s", caribou.Granularity)
	}
	var sb strings.Builder
	PrintTable2(&sb, rows)
	if !strings.Contains(sb.String(), "GreenCourier") {
		t.Error("print output missing rows")
	}
}

func TestFig2SeriesShape(t *testing.T) {
	series, err := Fig2(Fig2Options{
		From:      time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC),
		To:        time.Date(2023, 10, 8, 0, 0, 0, 0, time.UTC),
		StepHours: 1,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Values) != 7*24 {
			t.Errorf("%s: %d samples", s.Region, len(s.Values))
		}
		for _, v := range s.Values {
			if v <= 0 {
				t.Fatalf("%s: non-positive intensity", s.Region)
			}
		}
	}
	var sb strings.Builder
	PrintFig2(&sb, series)
	if len(sb.String()) == 0 {
		t.Error("empty print output")
	}
}

func TestFig2StatsCalibration(t *testing.T) {
	stats, err := Fig2Stats(17)
	if err != nil {
		t.Fatal(err)
	}
	east := stats[region.USEast1]
	ca := stats[region.CACentral1]
	if r := ca / east; r < 0.05 || r > 0.13 {
		t.Errorf("ca/east = %.3f, want ~0.085", r)
	}
}

func TestStrategyString(t *testing.T) {
	if Fine.String() != "fine" {
		t.Errorf("fine = %q", Fine.String())
	}
	if got := CoarseIn(region.USWest2).String(); got != "coarse(us-west-2)" {
		t.Errorf("coarse = %q", got)
	}
}

func TestFig7StrategiesCoverPaperLegend(t *testing.T) {
	strats := Fig7Strategies()
	if len(strats) != 9 {
		t.Fatalf("strategies = %d, want 9", len(strats))
	}
	coarse, fine := 0, 0
	for _, s := range strats {
		if s.Coarse != "" {
			coarse++
		} else {
			fine++
		}
		if len(s.Regions) == 0 {
			t.Errorf("%s: empty region set", s.Name)
		}
	}
	if coarse != 4 || fine != 5 {
		t.Errorf("coarse=%d fine=%d", coarse, fine)
	}
}

func TestSummarizeFig12(t *testing.T) {
	rows := []Fig12Row{
		{"wf", workloads.Small, "stepfunctions", 1.0, 1.1},
		{"wf", workloads.Small, "sns", 1.2, 1.3},
		{"wf", workloads.Small, "caribou", 1.21, 1.31},
	}
	out := SummarizeFig12(rows)
	if len(out) != 1 {
		t.Fatalf("overheads = %d", len(out))
	}
	o := out[0]
	if o.SFFasterThanSNSPct < 15 || o.SFFasterThanSNSPct > 18 {
		t.Errorf("SF faster = %.2f%%, want ~16.7%%", o.SFFasterThanSNSPct)
	}
	if o.CaribouOverSNSPct < 0.5 || o.CaribouOverSNSPct > 1.5 {
		t.Errorf("caribou over SNS = %.2f%%", o.CaribouOverSNSPct)
	}
	if o.CaribouOverSFPct < 20 || o.CaribouOverSFPct > 22 {
		t.Errorf("caribou over SF = %.2f%%", o.CaribouOverSFPct)
	}
}

func TestFig7GeomeansGrouping(t *testing.T) {
	rows := []Fig7Row{
		{Strategy: "fine(all)", Scenario: "best", Normalized: 0.25},
		{Strategy: "fine(all)", Scenario: "best", Normalized: 0.36},
		{Strategy: "fine(all)", Scenario: "worst", Normalized: 0.81},
		{Strategy: "coarse(us-east-1)", Scenario: "best", Normalized: 1},
	}
	gm := Fig7Geomeans(rows)
	if len(gm) != 2 {
		t.Fatalf("geomeans = %v", gm)
	}
	if gm["best"] < 0.29 || gm["best"] > 0.31 {
		t.Errorf("best geomean = %v, want 0.3", gm["best"])
	}
	if gm["worst"] != 0.81 {
		t.Errorf("worst geomean = %v", gm["worst"])
	}
}

// TestRunSmokeCoarse exercises the shared runner on the cheapest
// configuration: a coarse run needs no solver.
func TestRunSmokeCoarse(t *testing.T) {
	res, err := Run(RunConfig{
		Workload: workloads.DNAVisualization(),
		Class:    workloads.Small,
		Strategy: CoarseIn(region.CACentral1),
		PerDay:   48,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := res.Summarize(scenarios()[0].Tx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Invocations == 0 || sum.Succeeded != sum.Invocations {
		t.Fatalf("summary = %+v", sum)
	}
	// Everything measured must have run in ca-central-1 (coarse, no
	// benchmarking traffic).
	for _, rec := range res.App.Records[res.Start:] {
		for _, e := range rec.Executions {
			if e.Region != region.CACentral1 {
				t.Fatalf("coarse run executed in %s", e.Region)
			}
		}
	}
}

func TestFig13bForecastHorizonDegrades(t *testing.T) {
	rows, err := fig13b(Fig13Options{Frequencies: []int{1, 7}, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Average MAPE over regions per frequency: weekly solves (168 h
	// horizon) should forecast no better than daily (24 h).
	mape := map[int][]float64{}
	for _, r := range rows {
		mape[r.SolvesPerWeek] = append(mape[r.SolvesPerWeek], r.MAPEPct)
	}
	avg := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(mape[1]) < avg(mape[7])*0.8 {
		t.Errorf("weekly-horizon MAPE %.2f unexpectedly beats daily %.2f", avg(mape[1]), avg(mape[7]))
	}
}
