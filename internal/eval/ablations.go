package eval

import (
	"fmt"
	"io"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/forecast"
	"caribou/internal/region"
	"caribou/internal/stats"
	"caribou/internal/workloads"
)

// Ablations for the design choices DESIGN.md calls out: the HBSS search
// against exhaustive enumeration and the coarse single-region baseline;
// Holt-Winters forecasting against naive persistence; and the
// benchmarking-traffic fraction.

// AblationSolverRow compares one solve strategy on one workload.
type AblationSolverRow struct {
	Workload string
	Strategy string // "hbss", "exhaustive", "coarse"
	// Normalized is the estimated plan carbon / home plan carbon.
	Normalized float64
	// Explored counts candidate-plan estimates.
	SolveMillis int64
}

// AblationSolver runs the three strategies on workloads small enough to
// enumerate exhaustively (search space ≤ 4^|N|). The per-workload
// learning runs execute concurrently on the pool (nil uses a private
// default-width pool).
func AblationSolver(p *Pool, seed int64, perDay int) ([]AblationSolverRow, error) {
	wls := []*workloads.Workload{
		workloads.DNAVisualization(), // 4 plans
		workloads.RAGDataIngestion(), // 16 plans
	}
	perWL := make([][]AblationSolverRow, len(wls))
	err := p.orDefault().Do(len(wls), func(i int) error {
		rows, err := ablationSolverOne(wls[i], seed, perDay)
		if err != nil {
			return err
		}
		perWL[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []AblationSolverRow
	for _, r := range perWL {
		rows = append(rows, r...)
	}
	return rows, nil
}

func ablationSolverOne(wl *workloads.Workload, seed int64, perDay int) ([]AblationSolverRow, error) {
	_, app, err := learnedApp(wl, region.EvaluationFour(), seed, perDayOr(perDay))
	if err != nil {
		return nil, fmt.Errorf("ablate-solver %s: %w", wl.Name, err)
	}
	now := EvalStart.Add(24 * time.Hour)
	home := dag.NewHomePlan(wl.DAG, region.USEast1)
	homeEst, err := app.Estimator.Estimate(home, now, now)
	if err != nil {
		return nil, err
	}
	type solveFn func() (float64, error)
	strategies := []struct {
		name string
		fn   solveFn
	}{
		{"hbss/exhaustive", func() (float64, error) {
			res, err := app.Solver.SolveOne(now, now)
			if err != nil {
				return 0, err
			}
			return res.Estimate.CarbonMean, nil
		}},
		{"coarse", func() (float64, error) {
			res, err := app.Solver.SolveCoarse(now, now)
			if err != nil {
				return 0, err
			}
			return res.Estimate.CarbonMean, nil
		}},
	}
	var rows []AblationSolverRow
	for _, s := range strategies {
		//caribou:allow dettaint wall-clock solve timing feeds only the ablation's ms column, never simulated results
		start := time.Now() //caribou:allow wallclock times the real solver run for the ablation's ms column, not simulated time
		carbonMean, err := s.fn()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationSolverRow{
			Workload:   wl.Name,
			Strategy:   s.name,
			Normalized: carbonMean / homeEst.CarbonMean,
			//caribou:allow dettaint wall-clock solve timing feeds only the ablation's ms column, never simulated results
			SolveMillis: time.Since(start).Milliseconds(), //caribou:allow wallclock times the real solver run for the ablation's ms column, not simulated time
		})
	}
	return rows, nil
}

func perDayOr(v int) int {
	if v > 0 {
		return v
	}
	return 192
}

// PrintAblationSolver renders the comparison to w. The table carries only
// deterministic columns so stdout stays byte-comparable across runs and
// machines; the wall-clock solve times go to timings (nil discards them) —
// callers pass stderr.
func PrintAblationSolver(w, timings io.Writer, rows []AblationSolverRow) {
	fmt.Fprintf(w, "Ablation — solver strategies (estimated carbon normalized to home)\n")
	fmt.Fprintf(w, "%-24s %-18s %12s\n", "workload", "strategy", "normalized")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %-18s %12.3f\n", r.Workload, r.Strategy, r.Normalized)
	}
	if timings == nil {
		return
	}
	fmt.Fprintf(timings, "ablate-solver wall-clock\n")
	fmt.Fprintf(timings, "%-24s %-18s %10s\n", "workload", "strategy", "ms")
	for _, r := range rows {
		fmt.Fprintf(timings, "%-24s %-18s %10d\n", r.Workload, r.Strategy, r.SolveMillis)
	}
}

// AblationForecastRow compares forecasting strategies per zone/horizon.
type AblationForecastRow struct {
	Zone         string
	HorizonHours int
	HWMAPEPct    float64
	NaiveMAPEPct float64
}

// AblationForecast scores Holt-Winters against naive persistence on the
// synthetic carbon traces.
func AblationForecast(seed int64) ([]AblationForecastRow, error) {
	src, err := carbon.SharedSource(seed, EvalStart.Add(-8*24*time.Hour), EvalStart.Add(9*24*time.Hour))
	if err != nil {
		return nil, err
	}
	zones := []string{"US-MIDA-PJM", "US-CAL-CISO", "CA-QC"}
	horizons := []int{24, 72, 168}
	var rows []AblationForecastRow
	for _, zone := range zones {
		train, err := src.Hourly(zone, EvalStart.Add(-7*24*time.Hour), EvalStart)
		if err != nil {
			return nil, err
		}
		model, err := forecast.Fit(train, 24)
		if err != nil {
			return nil, err
		}
		for _, h := range horizons {
			actual, err := src.Hourly(zone, EvalStart, EvalStart.Add(time.Duration(h)*time.Hour))
			if err != nil {
				return nil, err
			}
			hw := model.ForecastRange(len(actual))
			naive := forecast.Naive(train, 24, len(actual))
			hwM, err := stats.MAPE(actual, hw)
			if err != nil {
				return nil, err
			}
			nvM, err := stats.MAPE(actual, naive)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationForecastRow{
				Zone: zone, HorizonHours: h, HWMAPEPct: hwM, NaiveMAPEPct: nvM,
			})
		}
	}
	return rows, nil
}

// PrintAblationForecast renders the comparison.
func PrintAblationForecast(w io.Writer, rows []AblationForecastRow) {
	fmt.Fprintf(w, "Ablation — Holt-Winters vs naive persistence (MAPE %%)\n")
	fmt.Fprintf(w, "%-14s %8s %12s %12s\n", "zone", "horizon", "holt-winters", "naive")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %7dh %12.2f %12.2f\n", r.Zone, r.HorizonHours, r.HWMAPEPct, r.NaiveMAPEPct)
	}
}

// AblationBenchTrafficRow measures the cost of the home-pinned
// benchmarking traffic share (§6.2's 10 %).
type AblationBenchTrafficRow struct {
	Fraction   float64
	Normalized float64 // measured carbon / home baseline, best case
}

// AblationBenchTraffic sweeps the benchmarking fraction on Text2Speech.
// All runs execute concurrently on the pool (nil uses a private
// default-width pool); the home baseline is shared with any other figure
// on the same pool via the memo.
func AblationBenchTraffic(p *Pool, seed int64, perDay int) ([]AblationBenchTrafficRow, error) {
	wl := workloads.Text2SpeechCensoring()
	tx := carbon.BestCase()
	fracs := []float64{0.02, 0.10, 0.25, 0.50}
	cfgs := []RunConfig{{
		Workload: wl, Class: workloads.Small,
		Strategy: CoarseIn(region.USEast1),
		PlanTx:   tx, PerDay: perDay, Seed: seed,
	}}
	for _, frac := range fracs {
		cfgs = append(cfgs, RunConfig{
			Workload: wl, Class: workloads.Small,
			Strategy: Fine,
			PlanTx:   tx, PerDay: perDay, Seed: seed,
			BenchFraction: frac,
		})
	}
	results, err := p.orDefault().RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	homeSum, err := results[0].Summarize(tx)
	if err != nil {
		return nil, err
	}
	var rows []AblationBenchTrafficRow
	for i, frac := range fracs {
		sum, err := results[i+1].Summarize(tx)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationBenchTrafficRow{
			Fraction:   frac,
			Normalized: sum.MeanCarbonG / homeSum.MeanCarbonG,
		})
	}
	return rows, nil
}

// PrintAblationBenchTraffic renders the sweep.
func PrintAblationBenchTraffic(w io.Writer, rows []AblationBenchTrafficRow) {
	fmt.Fprintf(w, "Ablation — home-pinned benchmarking traffic fraction (text2speech, best case)\n")
	fmt.Fprintf(w, "%10s %12s\n", "fraction", "normalized")
	for _, r := range rows {
		fmt.Fprintf(w, "%9.0f%% %12.3f\n", r.Fraction*100, r.Normalized)
	}
}
