package eval

import (
	"fmt"
	"io"
	"sort"

	"caribou/internal/termplot"
	"caribou/internal/workloads"
)

// Terminal renderings of the figures' shapes, enabled by caribou-eval's
// -plot flag. The tabular printers remain the canonical output; these
// charts exist so "who wins and where the crossovers fall" is visible at
// a glance.

// PlotFig2 draws the four regions' intensity traces as one line chart.
func PlotFig2(w io.Writer, series []Fig2Series) {
	var ts []termplot.Series
	for _, s := range series {
		ts = append(ts, termplot.Series{Name: shortRegion(s.Region), Values: s.Values})
	}
	termplot.Line(w, "Fig 2 — grid carbon intensity (gCO2eq/kWh)", ts, 100, 14)
}

// PlotFig7 draws, per workload/class/scenario group, the normalized
// carbon of each strategy as horizontal bars.
func PlotFig7(w io.Writer, rows []Fig7Row) {
	type key struct {
		wl    string
		class workloads.InputClass
		scen  string
	}
	groups := map[key][]Fig7Row{}
	var keys []key
	for _, r := range rows {
		k := key{r.Workload, r.Class, r.Scenario}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.wl != b.wl {
			return a.wl < b.wl
		}
		if a.class != b.class {
			return a.class < b.class
		}
		return a.scen < b.scen
	})
	for _, k := range keys {
		var labels []string
		var values []float64
		for _, r := range groups[k] {
			labels = append(labels, r.Strategy)
			values = append(values, r.Normalized)
		}
		termplot.Bars(w, fmt.Sprintf("Fig 7 — %s/%s (%s-case), carbon vs coarse(us-east-1)", k.wl, k.class, k.scen),
			labels, values, 50)
		fmt.Fprintln(w)
	}
}

// PlotFig9 draws the factor sweep: one line per (scenario, class).
func PlotFig9(w io.Writer, points []Fig9Point) {
	series := map[string][]float64{}
	var order []string
	for _, p := range points {
		name := p.Scenario + "/" + string(p.Class)
		if _, ok := series[name]; !ok {
			order = append(order, name)
		}
		series[name] = append(series[name], p.Geomean)
	}
	var ts []termplot.Series
	for _, name := range order {
		ts = append(ts, termplot.Series{Name: name, Values: series[name]})
	}
	termplot.Line(w, "Fig 9 — geomean normalized carbon vs tx energy factor (log-spaced x)", ts, 72, 12)
}

// PlotFig11 draws the relative-carbon trajectories of Caribou and the
// coarse baselines as sparklines, one scenario at a time.
func PlotFig11(w io.Writer, results []Fig11Result) {
	for _, res := range results {
		fmt.Fprintf(w, "Fig 11 — %s-case relative carbon over the week (sparklines)\n", res.Scenario)
		for _, name := range []string{"caribou", "us-west-1", "us-west-2"} {
			var vals []float64
			for _, b := range res.Bins {
				if v, ok := b.RelCarbon[name]; ok {
					vals = append(vals, v)
				}
			}
			fmt.Fprintf(w, "  %-10s %s\n", name, termplot.Sparkline(vals))
		}
	}
}

// PlotFig13b draws forecast MAPE against the solve frequency, one line
// per region.
func PlotFig13b(w io.Writer, rows []Fig13bRow) {
	series := map[string][]float64{}
	var order []string
	for _, r := range rows {
		name := shortRegion(r.Region)
		if _, ok := series[name]; !ok {
			order = append(order, name)
		}
		series[name] = append(series[name], r.MAPEPct)
	}
	var ts []termplot.Series
	for _, name := range order {
		ts = append(ts, termplot.Series{Name: name, Values: series[name]})
	}
	termplot.Line(w, "Fig 13b — forecast MAPE (%) vs solves per week", ts, 56, 10)
}
