package eval

import (
	"fmt"
	"io"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/region"
)

// Fig 2: hourly grid carbon intensity of the four evaluated AWS regions
// from July 2023 to January 2024, with two week-long zoom windows.

// Fig2Series is one region's trace at the requested resolution.
type Fig2Series struct {
	Region region.ID
	Zone   string
	Times  []time.Time
	Values []float64
}

// Fig2Options selects window and resolution.
type Fig2Options struct {
	From, To time.Time
	// StepHours downsamples the hourly trace (1 = hourly).
	StepHours int
	Seed      int64
}

// Fig2 synthesizes the traces. Defaults cover 2023-07-01 .. 2024-01-31
// at daily resolution, matching the figure's span.
func Fig2(opt Fig2Options) ([]Fig2Series, error) {
	if opt.From.IsZero() {
		opt.From = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	if opt.To.IsZero() {
		opt.To = time.Date(2024, 1, 31, 0, 0, 0, 0, time.UTC)
	}
	if opt.StepHours <= 0 {
		opt.StepHours = 24
	}
	if opt.Seed == 0 {
		opt.Seed = 17
	}
	src, err := carbon.NewSyntheticSource(opt.Seed, opt.From, opt.To)
	if err != nil {
		return nil, err
	}
	cat := region.NorthAmerica()
	var out []Fig2Series
	for _, id := range region.EvaluationFour() {
		r, _ := cat.Get(id)
		s := Fig2Series{Region: id, Zone: r.GridZone}
		for t := opt.From; t.Before(opt.To); t = t.Add(time.Duration(opt.StepHours) * time.Hour) {
			v, err := src.At(r.GridZone, t)
			if err != nil {
				return nil, err
			}
			s.Times = append(s.Times, t)
			s.Values = append(s.Values, v)
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig2Stats verifies the calibration targets the paper reports for the
// evaluation window: returns each region's average intensity and its
// ratio to us-east-1.
func Fig2Stats(seed int64) (map[region.ID]float64, error) {
	from := EvalStart
	to := EvalStart.Add(7 * 24 * time.Hour)
	src, err := carbon.NewSyntheticSource(seed, from, to)
	if err != nil {
		return nil, err
	}
	cat := region.NorthAmerica()
	out := map[region.ID]float64{}
	for _, id := range region.EvaluationFour() {
		r, _ := cat.Get(id)
		avg, err := src.Average(r.GridZone, from, to)
		if err != nil {
			return nil, err
		}
		out[id] = avg
	}
	return out, nil
}

// PrintFig2 renders the series compactly (one row per sample step, one
// column per region).
func PrintFig2(w io.Writer, series []Fig2Series) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "Fig 2 — grid carbon intensity (gCO2eq/kWh)\n%-18s", "time")
	for _, s := range series {
		fmt.Fprintf(w, " %14s", string(s.Region)[4:])
	}
	fmt.Fprintln(w)
	for i := range series[0].Times {
		fmt.Fprintf(w, "%-18s", series[0].Times[i].Format("2006-01-02 15:04"))
		for _, s := range series {
			fmt.Fprintf(w, " %14.1f", s.Values[i])
		}
		fmt.Fprintln(w)
	}
}
