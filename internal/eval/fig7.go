package eval

import (
	"fmt"
	"io"
	"sort"

	"caribou/internal/carbon"
	"caribou/internal/region"
	"caribou/internal/stats"
	"caribou/internal/workloads"
)

// Fig 7: normalized relative carbon versus deploying everything in
// us-east-1, for manual coarse single-region deployments and Caribou
// fine-grained deployments over different region sets, for both input
// sizes and both transmission-carbon scenarios.

// Fig7Row is one bar of Fig 7.
type Fig7Row struct {
	Workload   string
	Class      workloads.InputClass
	Strategy   string
	Scenario   string // "best" or "worst"
	Normalized float64
	// AbsoluteGrams is the per-invocation carbon before normalizing.
	AbsoluteGrams float64
}

// Fig7Strategies lists the deployment treatments in the figure's legend
// order.
func Fig7Strategies() []struct {
	Name    string
	Coarse  region.ID
	Regions []region.ID
} {
	e1, w1, w2, ca := region.USEast1, region.USWest1, region.USWest2, region.CACentral1
	return []struct {
		Name    string
		Coarse  region.ID
		Regions []region.ID
	}{
		{"coarse(us-east-1)", e1, []region.ID{e1}},
		{"coarse(us-west-1)", w1, []region.ID{e1, w1}},
		{"coarse(us-west-2)", w2, []region.ID{e1, w2}},
		{"coarse(ca-central-1)", ca, []region.ID{e1, ca}},
		{"fine(us-east-1,us-west-1)", "", []region.ID{e1, w1}},
		{"fine(us-east-1,us-west-2)", "", []region.ID{e1, w2}},
		{"fine(us-east-1,us-west-1,us-west-2)", "", []region.ID{e1, w1, w2}},
		{"fine(us-east-1,ca-central-1)", "", []region.ID{e1, ca}},
		{"fine(all)", "", []region.ID{e1, w1, w2, ca}},
	}
}

// scenarios pairs the accounting models of Fig 7's two bar styles.
func scenarios() []struct {
	Name string
	Tx   carbon.TransmissionModel
} {
	return []struct {
		Name string
		Tx   carbon.TransmissionModel
	}{
		{"best", carbon.BestCase()},
		{"worst", carbon.WorstCase()},
	}
}

// Fig7Options scales the experiment.
type Fig7Options struct {
	Workloads []*workloads.Workload // default: all five
	Classes   []workloads.InputClass
	PerDay    int
	Seed      int64
	// Pool runs and memoizes the experiment's runs; nil uses a private
	// default-width pool.
	Pool *Pool
}

// fig7Defaults fills unset options with the figure's full scale.
func fig7Defaults(opt Fig7Options) Fig7Options {
	if len(opt.Workloads) == 0 {
		opt.Workloads = workloads.All()
	}
	if len(opt.Classes) == 0 {
		opt.Classes = workloads.Classes()
	}
	return opt
}

// fig7Group is one (workload, class) bar group.
type fig7Group struct {
	wl    *workloads.Workload
	class workloads.InputClass
}

// fig7Plan enumerates the figure's runs for already-defaulted options:
// one config per coarse strategy, one per (fine strategy, scenario); idx
// maps (group, strategy, scenario) to its config slot. caribou-sweep's
// fig7 preset expands the same plan, so a sweep-populated cache serves
// the figure driver without executing.
func fig7Plan(opt Fig7Options) (cfgs []RunConfig, idx map[[3]int]int, groups []fig7Group) {
	for _, wl := range opt.Workloads {
		for _, class := range opt.Classes {
			groups = append(groups, fig7Group{wl, class})
		}
	}
	strats, scens := Fig7Strategies(), scenarios()
	idx = map[[3]int]int{}
	for gi, g := range groups {
		for si, strat := range strats {
			if strat.Coarse != "" {
				idx[[3]int{gi, si, 0}] = len(cfgs)
				cfgs = append(cfgs, RunConfig{
					Workload: g.wl, Class: g.class,
					Regions:  strat.Regions,
					Strategy: Strategy{Coarse: strat.Coarse},
					PerDay:   opt.PerDay, Seed: opt.Seed,
				})
				continue
			}
			for ci, sc := range scens {
				idx[[3]int{gi, si, ci}] = len(cfgs)
				cfgs = append(cfgs, RunConfig{
					Workload: g.wl, Class: g.class,
					Regions:  strat.Regions,
					Strategy: Fine,
					PlanTx:   sc.Tx,
					PerDay:   opt.PerDay, Seed: opt.Seed,
				})
			}
		}
	}
	return cfgs, idx, groups
}

// Fig7 runs the full geospatial-shifting comparison. The baseline of each
// (workload, class, scenario) group is the coarse us-east-1 run accounted
// under the same scenario. All runs of all groups execute concurrently on
// the pool; coarse deployments do not depend on the planning scenario, so
// each coarse strategy runs once per group and is re-accounted under both
// transmission models.
func Fig7(opt Fig7Options) ([]Fig7Row, error) {
	opt = fig7Defaults(opt)
	pool := opt.Pool.orDefault()
	cfgs, idx, groups := fig7Plan(opt)
	strats, scens := Fig7Strategies(), scenarios()
	results, err := pool.RunAll(cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}

	var rows []Fig7Row
	for gi, g := range groups {
		baseline := map[string]float64{} // scenario -> grams
		for si, strat := range strats {
			for ci, sc := range scens {
				res := results[idx[[3]int{gi, si, 0}]]
				if strat.Coarse == "" {
					res = results[idx[[3]int{gi, si, ci}]]
				}
				sum, err := res.Summarize(sc.Tx)
				if err != nil {
					return nil, fmt.Errorf("fig7 %s/%s: %w", g.wl.Name, g.class, err)
				}
				if strat.Name == "coarse(us-east-1)" {
					baseline[sc.Name] = sum.MeanCarbonG
				}
				base := baseline[sc.Name]
				norm := 0.0
				if base > 0 {
					norm = sum.MeanCarbonG / base
				}
				rows = append(rows, Fig7Row{
					Workload: g.wl.Name, Class: g.class, Strategy: strat.Name,
					Scenario: sc.Name, Normalized: norm, AbsoluteGrams: sum.MeanCarbonG,
				})
			}
		}
	}
	return rows, nil
}

// Fig7Geomeans summarizes the headline result: geometric-mean carbon
// reduction of the fine(all) strategy per scenario across workloads and
// classes (the paper reports 22.9 % worst-case and 66.6 % best-case).
func Fig7Geomeans(rows []Fig7Row) map[string]float64 {
	group := map[string][]float64{}
	for _, r := range rows {
		if r.Strategy == "fine(all)" && r.Normalized > 0 {
			group[r.Scenario] = append(group[r.Scenario], r.Normalized)
		}
	}
	out := map[string]float64{}
	for sc, xs := range group {
		g, err := stats.GeometricMean(xs)
		if err == nil {
			out[sc] = g
		}
	}
	return out
}

// PrintFig7 renders rows in the figure's grouping. The caller's slice is
// left untouched; sorting happens on a copy.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	rows = append([]Fig7Row(nil), rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		if rows[i].Class != rows[j].Class {
			return rows[i].Class < rows[j].Class
		}
		return false
	})
	fmt.Fprintf(w, "Fig 7 — carbon normalized to coarse(us-east-1), per transmission scenario\n")
	last := ""
	for _, r := range rows {
		key := r.Workload + "/" + string(r.Class)
		if key != last {
			fmt.Fprintf(w, "\n%s\n", key)
			last = key
		}
		fmt.Fprintf(w, "  %-40s %-6s %6.3f  (%.5f g/inv)\n", r.Strategy, r.Scenario, r.Normalized, r.AbsoluteGrams)
	}
	gm := Fig7Geomeans(rows)
	fmt.Fprintf(w, "\nGeomean fine(all): best-case %.3f (%.1f%% reduction), worst-case %.3f (%.1f%% reduction)\n",
		gm["best"], (1-gm["best"])*100, gm["worst"], (1-gm["worst"])*100)
}
