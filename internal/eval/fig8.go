package eval

import (
	"fmt"
	"io"

	"caribou/internal/carbon"
	"caribou/internal/workloads"
)

// Fig 8: geospatial shifting offers more carbon savings as the
// execution-to-transmission carbon ratio grows. Each point is one
// (workload, input size, scenario): x is the home deployment's
// execution/transmission carbon ratio, y is Caribou's carbon normalized
// to the home deployment.

// Fig8Point is one scatter point.
type Fig8Point struct {
	Workload   string
	Class      workloads.InputClass
	Scenario   string
	Ratio      float64 // execution carbon / transmission carbon at home
	Normalized float64 // fine(all) carbon / home carbon
}

// Fig8Options scales the experiment.
type Fig8Options struct {
	Workloads []*workloads.Workload
	Classes   []workloads.InputClass
	PerDay    int
	Seed      int64
	// Pool runs and memoizes the experiment's runs; nil uses a private
	// default-width pool.
	Pool *Pool
}

// fig8Defaults fills unset options with the figure's full scale.
func fig8Defaults(opt Fig8Options) Fig8Options {
	if len(opt.Workloads) == 0 {
		opt.Workloads = workloads.All()
	}
	if len(opt.Classes) == 0 {
		opt.Classes = workloads.Classes()
	}
	return opt
}

// fig8Configs enumerates the figure's runs for already-defaulted options:
// two configs per (workload, class, scenario), home then fine.
func fig8Configs(opt Fig8Options) []RunConfig {
	var cfgs []RunConfig
	for _, wl := range opt.Workloads {
		for _, class := range opt.Classes {
			for _, sc := range scenarios() {
				cfgs = append(cfgs,
					RunConfig{
						Workload: wl, Class: class,
						Strategy: CoarseIn("aws:us-east-1"),
						PlanTx:   sc.Tx, PerDay: opt.PerDay, Seed: opt.Seed,
					},
					RunConfig{
						Workload: wl, Class: class,
						Strategy: Fine,
						PlanTx:   sc.Tx, PerDay: opt.PerDay, Seed: opt.Seed,
					})
			}
		}
	}
	return cfgs
}

// Fig8 runs home and fine(all) per combination and derives the scatter.
// The home deployment is coarse and scenario-independent, so the memo
// collapses it to one execution per (workload, class).
func Fig8(opt Fig8Options) ([]Fig8Point, error) {
	opt = fig8Defaults(opt)
	pool := opt.Pool.orDefault()
	results, err := pool.RunAll(fig8Configs(opt))
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}

	var points []Fig8Point
	i := 0
	for _, wl := range opt.Workloads {
		for _, class := range opt.Classes {
			for _, sc := range scenarios() {
				home, fine := results[i], results[i+1]
				i += 2
				// Ratio uses the uniform best-case factor so intra-region
				// transfers are visible in the denominator even in the
				// worst-case scenario (the paper computes the ratio from
				// modeled energy of the collected execution data).
				homeSum, err := home.Summarize(carbon.BestCase())
				if err != nil {
					return nil, err
				}
				homeScen, err := home.Summarize(sc.Tx)
				if err != nil {
					return nil, err
				}
				fineSum, err := fine.Summarize(sc.Tx)
				if err != nil {
					return nil, err
				}
				norm := 0.0
				if homeScen.MeanCarbonG > 0 {
					norm = fineSum.MeanCarbonG / homeScen.MeanCarbonG
				}
				points = append(points, Fig8Point{
					Workload: wl.Name, Class: class, Scenario: sc.Name,
					Ratio:      homeSum.ExecToTxRatio(),
					Normalized: norm,
				})
			}
		}
	}
	return points, nil
}

// PrintFig8 renders the scatter points.
func PrintFig8(w io.Writer, points []Fig8Point) {
	fmt.Fprintf(w, "Fig 8 — normalized carbon vs execution/transmission carbon ratio\n")
	fmt.Fprintf(w, "%-24s %-6s %-6s %12s %12s\n", "workload", "class", "scen", "exec/tx", "normalized")
	for _, p := range points {
		fmt.Fprintf(w, "%-24s %-6s %-6s %12.3f %12.3f\n", p.Workload, p.Class, p.Scenario, p.Ratio, p.Normalized)
	}
}
