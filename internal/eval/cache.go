package eval

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"caribou/internal/core"
	"caribou/internal/platform"
	"caribou/internal/region"
)

// ResultSchema tags the blob payload format a cached Result is stored
// under in a runstore.Store. Bump the version suffix whenever resultBlob
// or the record types it embeds change shape: old blobs then read as a
// schema mismatch (a miss) and are transparently recomputed.
const ResultSchema = "caribou/eval.Result@v1"

// CanonicalKey returns the canonical serialization of the defaulted
// configuration — the string whose SHA-256 (runstore.KeyOf) addresses
// this run's result blob. Two configurations with equal keys produce
// bit-identical Results; see canonicalKey for the coarse-run exclusions.
func (c RunConfig) CanonicalKey() string {
	return c.withDefaults().canonicalKey()
}

// resultBlob is the durable form of a Result: the facts a run produced
// that cannot be rebuilt from its configuration. Everything else in a
// Result (the Env's catalogue, pricing book, and carbon traces) is
// deterministic given (seed, window, regions) and is reconstructed on
// load — the carbon source comes from the process-wide SharedSource
// cache, so rebuilding an Env costs far less than re-running the solver.
type resultBlob struct {
	Workload     string
	Seed         int64
	Regions      []region.ID
	Home         region.ID
	WarmupDays   int
	EvalDays     int
	Start        int
	InvokeErrors int
	Records      []*platform.InvocationRecord
}

// EncodeResult serializes res (produced by running cfg) into a blob
// payload for storage under cfg.CanonicalKey().
func EncodeResult(cfg RunConfig, res *Result) ([]byte, error) {
	cfg = cfg.withDefaults()
	name := ""
	if cfg.Workload != nil {
		name = cfg.Workload.Name
	}
	blob := resultBlob{
		Workload:     name,
		Seed:         cfg.Seed,
		Regions:      cfg.Regions,
		Home:         cfg.Home,
		WarmupDays:   cfg.WarmupDays,
		EvalDays:     cfg.EvalDays,
		Start:        res.Start,
		InvokeErrors: res.App.InvokeErrors,
		Records:      res.App.Records,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return nil, fmt.Errorf("eval: encode cached result: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeResult rebuilds a Result from a blob payload previously produced
// by EncodeResult for the same canonical configuration. The returned
// Result supports everything the figure drivers use — Summarize,
// SummarizeWindow, and App.Records — but carries no live executor wiring
// (it cannot be resumed).
func DecodeResult(cfg RunConfig, payload []byte) (*Result, error) {
	cfg = cfg.withDefaults()
	var blob resultBlob
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&blob); err != nil {
		return nil, fmt.Errorf("eval: decode cached result: %w", err)
	}
	name := ""
	if cfg.Workload != nil {
		name = cfg.Workload.Name
	}
	if blob.Workload != name {
		return nil, fmt.Errorf("eval: cached result is for workload %q, not %q", blob.Workload, name)
	}
	total := time.Duration(blob.WarmupDays+blob.EvalDays) * 24 * time.Hour
	env, err := core.NewEnv(core.EnvConfig{
		Seed:    blob.Seed,
		Start:   EvalStart,
		End:     EvalStart.Add(total),
		Regions: blob.Regions,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: rebuild env for cached result: %w", err)
	}
	app := &core.App{
		Env:          env,
		Workload:     cfg.Workload,
		Home:         blob.Home,
		Records:      blob.Records,
		InvokeErrors: blob.InvokeErrors,
	}
	return &Result{Env: env, App: app, Start: blob.Start}, nil
}
