package eval

import (
	"bytes"
	"os"
	"testing"

	"caribou/internal/runstore"
	"caribou/internal/workloads"
)

// cacheTestOptions is a small fig7 slice: one workload, one class, so the
// warm-cache tests stay fast while still crossing coarse and fine runs.
func cacheTestOptions(pool *Pool) Fig7Options {
	return Fig7Options{
		Workloads: []*workloads.Workload{workloads.Text2SpeechCensoring()},
		Classes:   []workloads.InputClass{workloads.Small},
		PerDay:    48,
		Pool:      pool,
	}
}

// TestPoolWarmCacheByteIdentity is the tentpole's acceptance property: a
// second process (modeled as a fresh Pool sharing only the store
// directory) re-running the same figure executes zero solver runs and
// prints byte-identical output.
func TestPoolWarmCacheByteIdentity(t *testing.T) {
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	cold := NewPool(2)
	cold.AttachStore(store)
	rows, err := Fig7(cacheTestOptions(cold))
	if err != nil {
		t.Fatal(err)
	}
	var coldOut bytes.Buffer
	PrintFig7(&coldOut, rows)
	cs := cold.Stats()
	if cs.Executed == 0 || cs.DiskWrites != cs.Executed {
		t.Fatalf("cold stats = %+v, want every execution published", cs)
	}

	warm := NewPool(2)
	warm.AttachStore(store)
	rows2, err := Fig7(cacheTestOptions(warm))
	if err != nil {
		t.Fatal(err)
	}
	var warmOut bytes.Buffer
	PrintFig7(&warmOut, rows2)
	ws := warm.Stats()
	if ws.Executed != 0 {
		t.Fatalf("warm run executed %d solver runs, want 0 (stats %+v)", ws.Executed, ws)
	}
	if ws.DiskHits == 0 || ws.Submitted != ws.Hits+ws.DiskHits {
		t.Fatalf("warm stats = %+v, want Submitted == Hits + DiskHits", ws)
	}
	if !bytes.Equal(coldOut.Bytes(), warmOut.Bytes()) {
		t.Fatalf("warm output differs from cold:\ncold:\n%s\nwarm:\n%s", coldOut.String(), warmOut.String())
	}
}

// TestPoolCorruptBlobRecomputed pins the repair path: truncating a cached
// blob turns the next submission into a recompute whose publish heals the
// store.
func TestPoolCorruptBlobRecomputed(t *testing.T) {
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Workload: workloads.ImageProcessing(),
		Class:    workloads.Small,
		Strategy: CoarseIn("aws:us-east-1"),
		PerDay:   48,
	}
	key := runstore.KeyOf(cfg.CanonicalKey())

	cold := NewPool(1)
	cold.AttachStore(store)
	res, err := cold.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(store.Path(key), 10); err != nil {
		t.Fatal(err)
	}

	repair := NewPool(1)
	repair.AttachStore(store)
	res2, err := repair.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := repair.Stats()
	if rs.Executed != 1 || rs.DiskHits != 0 || rs.DiskWrites != 1 {
		t.Fatalf("repair stats = %+v, want one recompute and one publish", rs)
	}
	if store.Stats().Corrupt == 0 {
		t.Fatal("store never classified the truncated blob as corrupt")
	}
	sum1, err := res.Summarize(cfg.withDefaults().PlanTx)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := res2.Summarize(cfg.withDefaults().PlanTx)
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 {
		t.Fatalf("recomputed summary differs: %+v vs %+v", sum1, sum2)
	}

	// The healed blob now serves a warm hit bit-identically.
	warm := NewPool(1)
	warm.AttachStore(store)
	res3, err := warm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Executed != 0 || s.DiskHits != 1 {
		t.Fatalf("post-repair stats = %+v, want a pure disk hit", s)
	}
	sum3, err := res3.Summarize(cfg.withDefaults().PlanTx)
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum3 {
		t.Fatalf("cached summary differs: %+v vs %+v", sum1, sum3)
	}
}

// TestEncodeDecodeResultRoundTrip pins that a decoded Result reproduces
// the exact summaries of the live one under every accounting window the
// drivers use.
func TestEncodeDecodeResultRoundTrip(t *testing.T) {
	cfg := RunConfig{
		Workload: workloads.Text2SpeechCensoring(),
		Class:    workloads.Small,
		PerDay:   48,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeResult(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(cfg, payload)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios() {
		want, err := res.Summarize(sc.Tx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Summarize(sc.Tx)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("%s summary drifted through the cache: %+v vs %+v", sc.Name, want, got)
		}
	}
	if len(back.App.Records) != len(res.App.Records) || back.Start != res.Start {
		t.Fatalf("decoded shape: %d records start %d, want %d start %d",
			len(back.App.Records), back.Start, len(res.App.Records), res.Start)
	}

	// A spec for a different workload must refuse the blob.
	other := cfg
	other.Workload = workloads.ImageProcessing()
	if _, err := DecodeResult(other, payload); err == nil {
		t.Fatal("decode accepted a blob for the wrong workload")
	}
}
