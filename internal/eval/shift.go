package eval

import (
	"fmt"
	"io"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/core"
	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/workloads"
)

// Input-distribution shift experiment (§9.1: "input sizes may vary
// greatly and undergo distribution shifts. Caribou captures these shifts
// by learning from the most recent invocations and adapts the deployment
// plan if necessary"). An ETL-style workflow whose payloads grow two
// orders of magnitude faster than its compute runs under the worst-case
// transmission model — the §9.2 (I2) situation: with small inputs,
// offloading to ca-central-1 pays off; after the distribution shifts to
// large inputs, transmission carbon swamps the gains and the adaptive
// framework must pull the workflow back home.

// shiftWorkload is the ETL pipeline used by ExtShift: extract → load,
// with compute that barely grows between input classes while payloads
// explode (100 KB → 24 MB).
func shiftWorkload() *workloads.Workload {
	d, err := dag.NewBuilder("etl-shift").
		AddNode(dag.Node{ID: "extract", MemoryMB: 1769}).
		AddNode(dag.Node{ID: "load", MemoryMB: 1769}).
		AddEdge("extract", "load").
		Build()
	if err != nil {
		panic(err) // static definition
	}
	return &workloads.Workload{
		Name:        "etl-shift",
		Description: "ETL pipeline with payloads that grow much faster than compute",
		DAG:         d,
		Nodes: map[dag.NodeID]workloads.NodeProfile{
			"extract": {MeanDurationSec: map[workloads.InputClass]float64{workloads.Small: 1.5, workloads.Large: 2.0}, DurationSigma: 0.1, CPUUtil: 0.8, MemoryMB: 1769},
			"load":    {MeanDurationSec: map[workloads.InputClass]float64{workloads.Small: 2.5, workloads.Large: 3.5}, DurationSigma: 0.1, CPUUtil: 0.8, MemoryMB: 1769},
		},
		EdgeBytes: map[workloads.EdgeKey]map[workloads.InputClass]float64{
			{From: "extract", To: "load"}: {workloads.Small: 80e3, workloads.Large: 20e6},
		},
		EntryBytes: map[workloads.InputClass]float64{workloads.Small: 200e3, workloads.Large: 24e6},
		OutputBytes: map[dag.NodeID]map[workloads.InputClass]float64{
			"load": {workloads.Small: 50e3, workloads.Large: 12e6},
		},
		InputLabel: map[workloads.InputClass]string{workloads.Small: "200KB", workloads.Large: "24MB"},
		ImageBytes: 300e6,
	}
}

// ExtShiftDay summarizes one day of the shift experiment.
type ExtShiftDay struct {
	Day int
	// LargeShare is the day's observed large-input fraction.
	LargeShare float64
	// OffloadedShare is the fraction of stage executions outside home.
	OffloadedShare float64
	// CarbonG is the measured mean carbon per invocation (worst case).
	CarbonG float64
}

// ExtShiftOptions scales the experiment.
type ExtShiftOptions struct {
	Days     int // total days; the shift happens halfway
	PerDay   int
	Seed     int64
	Workload *workloads.Workload
	// Pool bounds the experiment's concurrency; nil uses a private
	// default-width pool. The shift experiment is a single continuous
	// adaptive run (its days are causally chained through the learning
	// loop), so it occupies one worker slot on the generic job lane.
	Pool *Pool
}

// ExtShift runs the experiment and returns per-day rows.
func ExtShift(opt ExtShiftOptions) ([]ExtShiftDay, error) {
	var rows []ExtShiftDay
	err := opt.Pool.orDefault().Do(1, func(int) error {
		var err error
		rows, err = extShiftRun(opt)
		return err
	})
	return rows, err
}

func extShiftRun(opt ExtShiftOptions) ([]ExtShiftDay, error) {
	if opt.Days == 0 {
		opt.Days = 6
	}
	if opt.PerDay == 0 {
		opt.PerDay = 240
	}
	if opt.Seed == 0 {
		opt.Seed = 17
	}
	if opt.Workload == nil {
		opt.Workload = shiftWorkload()
	}
	start := EvalStart
	end := start.Add(time.Duration(opt.Days) * 24 * time.Hour)
	env, err := core.NewEnv(core.EnvConfig{
		Seed: opt.Seed, Start: start, End: end, Regions: region.EvaluationFour(),
	})
	if err != nil {
		return nil, err
	}
	tx := carbon.WorstCase()
	app, err := env.NewApp(core.AppConfig{
		Workload: opt.Workload,
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
		Adaptive: true,
		Tx:       tx,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
		Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	shiftAt := start.Add(time.Duration(opt.Days/2) * 24 * time.Hour)
	gap := 24 * time.Hour / time.Duration(opt.PerDay)
	for d := 0; d < opt.Days; d++ {
		dayStart := start.Add(time.Duration(d) * 24 * time.Hour)
		class := workloads.Small
		if !dayStart.Before(shiftAt) {
			class = workloads.Large
		}
		app.ScheduleUniform(dayStart, opt.PerDay, gap, class)
	}
	app.ScheduleManagerTicks(time.Hour)
	env.Run()

	var rows []ExtShiftDay
	for d := 0; d < opt.Days; d++ {
		from := start.Add(time.Duration(d) * 24 * time.Hour)
		to := from.Add(24 * time.Hour)
		row := ExtShiftDay{Day: d + 1}
		var execTotal, execRemote, invs, large int
		var carbonSum float64
		for _, r := range app.Records {
			if r.End.Before(from) || !r.End.Before(to) {
				continue
			}
			invs++
			if r.InputClass == string(workloads.Large) {
				large++
			}
			for _, e := range r.Executions {
				execTotal++
				if e.Region != region.USEast1 {
					execRemote++
				}
			}
			eg, tg, err := r.CarbonGrams(env.Carbon, env.Cat, tx)
			if err != nil {
				return nil, err
			}
			carbonSum += eg + tg
		}
		if invs == 0 {
			continue
		}
		row.LargeShare = float64(large) / float64(invs)
		row.OffloadedShare = float64(execRemote) / float64(execTotal)
		row.CarbonG = carbonSum / float64(invs)
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("ext-shift: no completed invocations")
	}
	return rows, nil
}

// PrintExtShift renders the per-day adaptation series.
func PrintExtShift(w io.Writer, rows []ExtShiftDay) {
	fmt.Fprintf(w, "Extension — input-distribution shift adaptation (etl-shift, worst-case tx)\n")
	fmt.Fprintf(w, "%4s %12s %12s %12s\n", "day", "large-share", "offloaded", "gCO2/inv")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %11.0f%% %11.1f%% %12.5f\n", r.Day, r.LargeShare*100, r.OffloadedShare*100, r.CarbonG)
	}
}
