package eval

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/workloads"
)

// fig7TestOptions is a reduced-scale Fig 7: one workload with a one-stage
// DAG (four candidate plans), one input class, light traffic.
func fig7TestOptions(pool *Pool) Fig7Options {
	return Fig7Options{
		Workloads: []*workloads.Workload{workloads.DNAVisualization()},
		Classes:   []workloads.InputClass{workloads.Small},
		PerDay:    48,
		Seed:      7,
		Pool:      pool,
	}
}

func TestPoolWorkersDefault(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewPool(3).Workers(); got != 3 {
		t.Errorf("workers = %d, want 3", got)
	}
}

// TestFig7DeterministicAcrossWorkers is the harness's core guarantee:
// figure rows are bit-identical regardless of the worker count. Run under
// -race by make verify, this also shakes out data races between
// concurrently executing runs.
func TestFig7DeterministicAcrossWorkers(t *testing.T) {
	serial, err := Fig7(fig7TestOptions(NewPool(1)))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig7(fig7TestOptions(NewPool(8)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("rows differ between Workers=1 and Workers=8:\n%+v\nvs\n%+v", serial, parallel)
	}
}

// TestFig7RunCounts pins the figure's execution economy: each coarse
// strategy runs once per (workload, class) group and is re-accounted under
// both transmission scenarios, so one group costs 4 coarse + 5 fine x 2
// scenarios = 14 executions. A second identical Fig 7 on the same pool is
// served entirely from the memo.
func TestFig7RunCounts(t *testing.T) {
	pool := NewPool(2)
	if _, err := Fig7(fig7TestOptions(pool)); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	want := PoolStats{Submitted: 14, Executed: 14, Hits: 0}
	if st != want {
		t.Fatalf("first Fig7 stats = %+v, want %+v", st, want)
	}

	if _, err := Fig7(fig7TestOptions(pool)); err != nil {
		t.Fatal(err)
	}
	st = pool.Stats()
	want = PoolStats{Submitted: 28, Executed: 14, Hits: 14}
	if st != want {
		t.Fatalf("second Fig7 stats = %+v, want %+v", st, want)
	}
}

// TestCoarsePlanTxInert asserts the key property behind the cross-scenario
// sharing: coarse runs never consult the solver, so planning-only inputs
// (PlanTx, Tolerances, BenchFraction) do not distinguish coarse memo keys
// — while fine keys must keep them apart.
func TestCoarsePlanTxInert(t *testing.T) {
	wl := workloads.DNAVisualization()
	coarse := RunConfig{
		Workload: wl, Class: workloads.Small,
		Regions:  []region.ID{region.USEast1},
		Strategy: CoarseIn(region.USEast1),
		PerDay:   24, Seed: 5,
	}
	variant := coarse
	variant.PlanTx = carbon.WorstCase()
	variant.BenchFraction = 0.5
	variant.Tolerances = &solver.Tolerances{Latency: solver.Tol(5)}

	k1 := coarse.withDefaults().canonicalKey()
	k2 := variant.withDefaults().canonicalKey()
	if k1 != k2 {
		t.Errorf("coarse keys differ on planning-only inputs:\n%s\n%s", k1, k2)
	}

	pool := NewPool(1)
	r1, err := pool.Run(coarse)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pool.Run(variant)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("coarse variants did not share one execution")
	}
	if st := pool.Stats(); st.Executed != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 executed, 1 hit", st)
	}

	fine := coarse
	fine.Strategy = Fine
	fine.Regions = region.EvaluationFour()
	fineWorst := fine
	fineWorst.PlanTx = carbon.WorstCase()
	if fine.withDefaults().canonicalKey() == fineWorst.withDefaults().canonicalKey() {
		t.Error("fine keys must distinguish PlanTx")
	}
	fineTol := fine
	fineTol.Tolerances = &solver.Tolerances{Latency: solver.Tol(5)}
	if fine.withDefaults().canonicalKey() == fineTol.withDefaults().canonicalKey() {
		t.Error("fine keys must distinguish Tolerances")
	}
	fineBench := fine
	fineBench.BenchFraction = 0.5
	if fine.withDefaults().canonicalKey() == fineBench.withDefaults().canonicalKey() {
		t.Error("fine keys must distinguish BenchFraction")
	}
}

// TestRunAllAlignmentAndMemo checks that RunAll results line up with the
// submitted configs and that duplicates collapse onto one execution.
func TestRunAllAlignmentAndMemo(t *testing.T) {
	wl := workloads.DNAVisualization()
	cfg := func(seed int64) RunConfig {
		return RunConfig{
			Workload: wl, Class: workloads.Small,
			Regions:  []region.ID{region.USEast1},
			Strategy: CoarseIn(region.USEast1),
			PerDay:   24, Seed: seed,
		}
	}
	pool := NewPool(4)
	results, err := pool.RunAll([]RunConfig{cfg(5), cfg(6), cfg(5), cfg(6), cfg(5)})
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != results[2] || results[2] != results[4] || results[1] != results[3] {
		t.Error("duplicate configs did not share results")
	}
	if results[0] == results[1] {
		t.Error("distinct seeds shared a result")
	}
	if st := pool.Stats(); st.Submitted != 5 || st.Executed != 2 || st.Hits != 3 {
		t.Errorf("stats = %+v, want 5/2/3", st)
	}
}

// TestDoFirstErrorInSubmissionOrder checks the generic lane's error
// contract: the reported error is the first failing job in submission
// order, independent of completion order.
func TestDoFirstErrorInSubmissionOrder(t *testing.T) {
	pool := NewPool(4)
	err := pool.Do(8, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "job 3 failed") {
		t.Errorf("err = %v, want first failure (job 3)", err)
	}
	if err := pool.Do(4, func(int) error { return nil }); err != nil {
		t.Errorf("all-ok Do returned %v", err)
	}
}

// TestSummarizeWindowBoundaries pins the half-open [from, to) window
// semantics: a record ending exactly at from is included, one ending
// exactly at to is excluded, and an empty window is an error.
func TestSummarizeWindowBoundaries(t *testing.T) {
	res, err := Run(RunConfig{
		Workload: workloads.DNAVisualization(), Class: workloads.Small,
		Regions:  []region.ID{region.USEast1},
		Strategy: CoarseIn(region.USEast1),
		PerDay:   24, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := carbon.BestCase()
	full, err := res.Summarize(tx)
	if err != nil {
		t.Fatal(err)
	}

	// A window spanning everything matches the plain summary.
	wide, err := res.SummarizeWindow(tx, EvalStart, EvalStart.Add(365*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, wide) {
		t.Errorf("wide window != full summary:\n%+v\nvs\n%+v", wide, full)
	}

	first := res.App.Records[res.Start]
	e := first.End

	// from == record End: included.
	at, err := res.SummarizeWindow(tx, e, e.Add(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if at.Invocations != 1 {
		t.Errorf("[End, End+1ns) invocations = %d, want 1", at.Invocations)
	}

	// to == record End: excluded. The first measured record is the
	// earliest-ending one, so the window below it is empty.
	if _, err := res.SummarizeWindow(tx, EvalStart, e); err == nil {
		t.Error("[EvalStart, firstEnd) should be empty (at-to record excluded)")
	}
	if sum, err := res.SummarizeWindow(tx, EvalStart, e.Add(time.Nanosecond)); err != nil || sum.Invocations != 1 {
		t.Errorf("[EvalStart, firstEnd+1ns) = (%+v, %v), want exactly 1 invocation", sum, err)
	}

	// Empty window.
	if _, err := res.SummarizeWindow(tx, e, e); err == nil {
		t.Error("empty window should error")
	}
}
