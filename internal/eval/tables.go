package eval

import (
	"fmt"
	"io"

	"caribou/internal/workloads"
)

// Table 1: benchmark workflow structures, synchronization/conditional
// features, and input sizes.

// Table1Row describes one benchmark.
type Table1Row struct {
	Benchmark  string
	Stages     int
	Edges      int
	Sync       bool
	Cond       bool
	SmallInput string
	LargeInput string
}

// Table1 derives the table from the workload definitions.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, wl := range workloads.All() {
		rows = append(rows, Table1Row{
			Benchmark:  wl.Name,
			Stages:     wl.DAG.Len(),
			Edges:      len(wl.DAG.Edges()),
			Sync:       len(wl.DAG.SyncNodes()) > 0,
			Cond:       wl.DAG.HasConditional(),
			SmallInput: wl.InputLabel[workloads.Small],
			LargeInput: wl.InputLabel[workloads.Large],
		})
	}
	return rows
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1 — benchmark workflows\n")
	fmt.Fprintf(w, "%-24s %6s %6s %5s %5s %12s %12s\n", "benchmark", "stages", "edges", "sync", "cond", "small", "large")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %6d %6d %5v %5v %12s %12s\n",
			r.Benchmark, r.Stages, r.Edges, r.Sync, r.Cond, r.SmallInput, r.LargeInput)
	}
}

// Table 2: capability taxonomy of serverless workflow deployment
// frameworks. The comparison rows are documentation (other systems'
// capabilities as the paper reports them); the Caribou row is asserted
// against this implementation by the test suite.

// Table2Row is one framework's capability set.
type Table2Row struct {
	Framework    string
	Objectives   string
	Granularity  string
	DynMigration bool
	Geospatial   bool
	MultiStage   bool
	ControlFlow  bool
	SyncNodes    bool
	TxOverhead   bool
	Providers    string
}

// Table2 reproduces the taxonomy.
func Table2() []Table2Row {
	return []Table2Row{
		{"AWS Step Functions", "-", "coarse", false, false, true, true, true, false, "AWS"},
		{"GCP Workflows", "-", "coarse", false, false, true, true, true, false, "Google"},
		{"Azure Logic Apps", "-", "coarse", false, false, true, true, true, false, "Azure"},
		{"Serverless Multicloud", "latency, cost", "fine", false, false, true, false, false, false, "AWS, Google, Alibaba"},
		{"BPMN4FO", "-", "coarse", false, false, false, true, false, false, "AWS, Azure, IBM"},
		{"xAFCL", "latency, cost", "fine", false, true, true, true, false, false, "AWS, Azure, IBM, Google, Alibaba"},
		{"OpenTOSCA", "-", "coarse", false, false, true, true, true, false, "AWS, Azure, IBM, Google, ..."},
		{"Carbon-Aware GSLB", "carbon", "coarse", false, true, false, false, false, false, "Azure"},
		{"GreenCourier", "carbon", "coarse", false, true, false, false, false, false, "Google"},
		{"Caribou", "carbon, latency, cost", "fine", true, true, true, true, true, true, "AWS (simulated)"},
	}
}

// PrintTable2 renders Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2 — framework capability taxonomy\n")
	fmt.Fprintf(w, "%-22s %-22s %-7s %-4s %-4s %-6s %-5s %-5s %-4s %s\n",
		"framework", "objectives", "gran", "mig", "geo", "stages", "ctrl", "sync", "tx", "providers")
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-22s %-7s %-4s %-4s %-6s %-5s %-5s %-4s %s\n",
			r.Framework, r.Objectives, r.Granularity,
			mark(r.DynMigration), mark(r.Geospatial), mark(r.MultiStage),
			mark(r.ControlFlow), mark(r.SyncNodes), mark(r.TxOverhead), r.Providers)
	}
}
