package eval

import (
	"strings"
	"testing"
	"time"

	"caribou/internal/workloads"
)

func TestWriteCSVFigureRows(t *testing.T) {
	rows := []Fig7Row{
		{Workload: "wf", Class: workloads.Small, Strategy: "fine(all)", Scenario: "best", Normalized: 0.25, AbsoluteGrams: 0.001},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "Workload,Class,Strategy,Scenario,Normalized,AbsoluteGrams\n") {
		t.Errorf("header = %q", out)
	}
	if !strings.Contains(out, "wf,small,fine(all),best,0.25,0.001") {
		t.Errorf("row = %q", out)
	}
}

func TestWriteCSVSkipsNonScalarFields(t *testing.T) {
	type mixed struct {
		Name string
		Vals []float64 // skipped
		N    int
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, []mixed{{Name: "x", Vals: []float64{1}, N: 3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "Name,N\n") {
		t.Errorf("header = %q", sb.String())
	}
}

func TestWriteCSVTimeAndBool(t *testing.T) {
	type row struct {
		At time.Time
		OK bool
	}
	at := time.Date(2023, 10, 15, 6, 0, 0, 0, time.UTC)
	var sb strings.Builder
	if err := WriteCSV(&sb, []row{{At: at, OK: true}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2023-10-15T06:00:00Z,true") {
		t.Errorf("out = %q", sb.String())
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, 42); err == nil {
		t.Error("non-slice accepted")
	}
	if err := WriteCSV(&sb, []Fig7Row{}); err == nil {
		t.Error("empty slice accepted")
	}
	if err := WriteCSV(&sb, []int{1}); err == nil {
		t.Error("slice of non-structs accepted")
	}
	type onlyMaps struct{ M map[string]int }
	if err := WriteCSV(&sb, []onlyMaps{{}}); err == nil {
		t.Error("struct without encodable fields accepted")
	}
}
