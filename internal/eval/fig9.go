package eval

import (
	"fmt"
	"io"

	"caribou/internal/carbon"
	"caribou/internal/stats"
	"caribou/internal/workloads"
)

// Fig 9: geometric-mean normalized carbon across the five workflows for
// different transmission energy factors, under two factor structures:
// equal intra/inter-region factors and free intra-region transmission.

// Fig9Point is one sweep sample.
type Fig9Point struct {
	Scenario  string // "equal" or "free-intra"
	Class     workloads.InputClass
	FactorKWh float64
	// Geomean of Caribou's carbon normalized to the home deployment.
	Geomean float64
}

// Fig9Options scales the sweep.
type Fig9Options struct {
	Factors   []float64
	Workloads []*workloads.Workload
	Classes   []workloads.InputClass
	PerDay    int
	Seed      int64
	// Pool runs and memoizes the sweep's runs; nil uses a private
	// default-width pool.
	Pool *Pool
}

// DefaultFig9Factors spans the figure's x-axis (kWh/GB).
func DefaultFig9Factors() []float64 {
	return []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
}

// fig9Defaults fills unset options with the figure's full scale.
func fig9Defaults(opt Fig9Options) Fig9Options {
	if len(opt.Factors) == 0 {
		opt.Factors = DefaultFig9Factors()
	}
	if len(opt.Workloads) == 0 {
		opt.Workloads = workloads.All()
	}
	if len(opt.Classes) == 0 {
		opt.Classes = workloads.Classes()
	}
	return opt
}

// fig9Model is one factor structure of the sweep.
type fig9Model struct {
	name string
	mk   func(f float64) carbon.TransmissionModel
}

func fig9Models() []fig9Model {
	return []fig9Model{
		{"equal", carbon.Uniform},
		{"free-intra", carbon.FreeIntra},
	}
}

// fig9Configs enumerates the sweep's runs for already-defaulted options:
// two configs per (model, class, factor, workload), home then fine.
func fig9Configs(opt Fig9Options) []RunConfig {
	var cfgs []RunConfig
	for _, m := range fig9Models() {
		for _, class := range opt.Classes {
			for _, f := range opt.Factors {
				tx := m.mk(f)
				for _, wl := range opt.Workloads {
					cfgs = append(cfgs,
						RunConfig{
							Workload: wl, Class: class,
							Strategy: CoarseIn("aws:us-east-1"),
							PlanTx:   tx, PerDay: opt.PerDay, Seed: opt.Seed,
						},
						RunConfig{
							Workload: wl, Class: class,
							Strategy: Fine,
							PlanTx:   tx, PerDay: opt.PerDay, Seed: opt.Seed,
						})
				}
			}
		}
	}
	return cfgs
}

// Fig9 runs the sweep. For each (scenario, factor, class) the geometric
// mean is over workloads of Caribou-fine carbon normalized to the home
// deployment, both accounted under the swept factor model.
func Fig9(opt Fig9Options) ([]Fig9Point, error) {
	opt = fig9Defaults(opt)
	models := fig9Models()
	pool := opt.Pool.orDefault()
	// The home run is coarse, so the memo collapses the whole sweep's
	// baselines to one execution per (workload, class).
	results, err := pool.RunAll(fig9Configs(opt))
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}

	var points []Fig9Point
	i := 0
	for _, m := range models {
		for _, class := range opt.Classes {
			for _, f := range opt.Factors {
				tx := m.mk(f)
				var norms []float64
				for range opt.Workloads {
					home, fine := results[i], results[i+1]
					i += 2
					homeSum, err := home.Summarize(tx)
					if err != nil {
						return nil, err
					}
					fineSum, err := fine.Summarize(tx)
					if err != nil {
						return nil, err
					}
					if homeSum.MeanCarbonG > 0 {
						norms = append(norms, fineSum.MeanCarbonG/homeSum.MeanCarbonG)
					}
				}
				g, err := stats.GeometricMean(norms)
				if err != nil {
					return nil, err
				}
				points = append(points, Fig9Point{
					Scenario: m.name, Class: class, FactorKWh: f, Geomean: g,
				})
			}
		}
	}
	return points, nil
}

// PrintFig9 renders the sweep.
func PrintFig9(w io.Writer, points []Fig9Point) {
	fmt.Fprintf(w, "Fig 9 — geomean normalized carbon vs transmission energy factor\n")
	fmt.Fprintf(w, "%-12s %-6s %12s %10s\n", "scenario", "class", "kWh/GB", "geomean")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %-6s %12.0e %10.3f\n", p.Scenario, p.Class, p.FactorKWh, p.Geomean)
	}
}
