package eval

import (
	"fmt"
	"io"
	"time"

	"caribou/internal/solver"
	"caribou/internal/workloads"
)

// Fig 10: carbon emissions and relative service time under different
// end-to-end runtime tolerances (0–10 %), for DNA Visualization and Image
// Processing under both transmission scenarios. Relative time is the
// p95 tail service time of the chosen deployment divided by the QoS bound
// (home p95 × (1 + tolerance)); above 1.0 the QoS is violated.

// Fig10Point is one (workload, scenario, tolerance) sample.
type Fig10Point struct {
	Workload     string
	Class        workloads.InputClass
	Scenario     string
	TolerancePct float64
	RelCarbon    float64 // vs home deployment, same scenario
	RelTime      float64 // p95 / QoS bound
	QoSMet       bool
}

// Fig10Options scales the sweep.
type Fig10Options struct {
	Workloads  []*workloads.Workload
	Class      workloads.InputClass
	Tolerances []float64
	PerDay     int
	Seed       int64
	// Pool runs and memoizes the sweep's runs; nil uses a private
	// default-width pool.
	Pool *Pool
}

// fig10Defaults fills unset options with the figure's full scale.
func fig10Defaults(opt Fig10Options) Fig10Options {
	if len(opt.Workloads) == 0 {
		opt.Workloads = []*workloads.Workload{
			workloads.DNAVisualization(),
			workloads.ImageProcessing(),
		}
	}
	if opt.Class == "" {
		opt.Class = workloads.Small
	}
	if len(opt.Tolerances) == 0 {
		opt.Tolerances = []float64{0, 2.5, 5, 7.5, 10}
	}
	return opt
}

// fig10Configs enumerates the sweep's runs for already-defaulted options:
// per (workload, scenario), the home baseline followed by one fine run
// per tolerance.
func fig10Configs(opt Fig10Options) []RunConfig {
	var cfgs []RunConfig
	for _, wl := range opt.Workloads {
		for _, sc := range scenarios() {
			cfgs = append(cfgs, RunConfig{
				Workload: wl, Class: opt.Class,
				Strategy: CoarseIn("aws:us-east-1"),
				EvalDays: 2,
				PlanTx:   sc.Tx, PerDay: opt.PerDay, Seed: opt.Seed,
			})
			for _, tolPct := range opt.Tolerances {
				// Two measured days: day one feeds remote observations
				// (including cold-start tails) back into the model; day
				// two is the reported steady state after the corrective
				// re-solve.
				cfgs = append(cfgs, RunConfig{
					Workload: wl, Class: opt.Class,
					Strategy:   Fine,
					PlanTx:     sc.Tx,
					Tolerances: &solver.Tolerances{Latency: solver.Tol(tolPct)},
					EvalDays:   2,
					PerDay:     opt.PerDay, Seed: opt.Seed,
				})
			}
		}
	}
	return cfgs
}

// Fig10 runs the tolerance sweep. The coarse home baseline is
// scenario-independent, so the memo collapses it to one execution per
// workload.
func Fig10(opt Fig10Options) ([]Fig10Point, error) {
	opt = fig10Defaults(opt)
	pool := opt.Pool.orDefault()
	results, err := pool.RunAll(fig10Configs(opt))
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}

	var points []Fig10Point
	i := 0
	for _, wl := range opt.Workloads {
		for _, sc := range scenarios() {
			// Home baseline (for carbon normalization and the QoS
			// definition), run over the same days and summarized on
			// the same final day as the fine runs so both sides see
			// identical grid conditions.
			lastDay := EvalStart.Add(2 * 24 * time.Hour)
			home := results[i]
			i++
			homeSum, err := home.SummarizeWindow(sc.Tx, lastDay, lastDay.Add(24*time.Hour))
			if err != nil {
				return nil, err
			}
			for _, tolPct := range opt.Tolerances {
				fine := results[i]
				i++
				fineSum, err := fine.SummarizeWindow(sc.Tx, lastDay, lastDay.Add(24*time.Hour))
				if err != nil {
					return nil, err
				}
				qos := homeSum.P95ServiceSec * (1 + tolPct/100)
				relTime := 0.0
				if qos > 0 {
					relTime = fineSum.P95ServiceSec / qos
				}
				relCarbon := 0.0
				if homeSum.MeanCarbonG > 0 {
					relCarbon = fineSum.MeanCarbonG / homeSum.MeanCarbonG
				}
				points = append(points, Fig10Point{
					Workload: wl.Name, Class: opt.Class, Scenario: sc.Name,
					TolerancePct: tolPct,
					RelCarbon:    relCarbon,
					RelTime:      relTime,
					QoSMet:       relTime <= 1.0005, // epsilon absorbs display rounding

				})
			}
		}
	}
	return points, nil
}

// PrintFig10 renders the sweep.
func PrintFig10(w io.Writer, points []Fig10Point) {
	fmt.Fprintf(w, "Fig 10 — carbon and relative time vs runtime tolerance\n")
	fmt.Fprintf(w, "%-20s %-6s %-6s %8s %10s %9s %7s\n",
		"workload", "class", "scen", "tol(%)", "relCarbon", "relTime", "QoS")
	for _, p := range points {
		qos := "met"
		if !p.QoSMet {
			qos = "VIOL"
		}
		fmt.Fprintf(w, "%-20s %-6s %-6s %8.1f %10.3f %9.3f %7s\n",
			p.Workload, p.Class, p.Scenario, p.TolerancePct, p.RelCarbon, p.RelTime, qos)
	}
}
