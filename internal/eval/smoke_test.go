package eval

import (
	"os"
	"testing"

	"caribou/internal/workloads"
)

func TestFig7SmokeOneWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	rows, err := Fig7(Fig7Options{
		Workloads: []*workloads.Workload{workloads.Text2SpeechCensoring()},
		Classes:   []workloads.InputClass{workloads.Small},
		PerDay:    96,
	})
	if err != nil {
		t.Fatal(err)
	}
	PrintFig7(os.Stdout, rows)
}

func TestExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	wls := []*workloads.Workload{workloads.Text2SpeechCensoring()}

	global, err := ExtGlobal(nil, wls, 3, 96)
	if err != nil {
		t.Fatal(err)
	}
	if len(global) != 1 || global[0].GlobalNormalized <= 0 {
		t.Fatalf("global rows = %+v", global)
	}
	if global[0].GlobalNormalized > global[0].NANormalized*1.05 {
		t.Errorf("global set should not be worse than NA: %+v", global[0])
	}

	temporal, err := ExtTemporal(nil, wls, 3, 96)
	if err != nil {
		t.Fatal(err)
	}
	tr := temporal[0]
	if !(tr.Combined <= tr.Geospatial+1e-9 && tr.Combined <= tr.Temporal+1e-9) {
		t.Errorf("combined shifting must dominate both: %+v", tr)
	}
	if tr.Temporal >= 1 || tr.Geospatial >= 1 {
		t.Errorf("both strategies should save carbon: %+v", tr)
	}

	signal, err := ExtSignal(nil, wls, 3, 96)
	if err != nil {
		t.Fatal(err)
	}
	if signal[0].MCIPlanACICarbon < 0.99 {
		t.Errorf("MCI-driven plans should not beat ACI plans on ACI accounting: %+v", signal[0])
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	solverRows, err := AblationSolver(nil, 3, 96)
	if err != nil {
		t.Fatal(err)
	}
	if len(solverRows) == 0 {
		t.Fatal("no solver ablation rows")
	}
	for _, r := range solverRows {
		if r.Normalized <= 0 || r.Normalized > 1.01 {
			t.Errorf("%s/%s normalized = %v", r.Workload, r.Strategy, r.Normalized)
		}
	}
	forecastRows, err := AblationForecast(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(forecastRows) != 9 {
		t.Fatalf("forecast rows = %d", len(forecastRows))
	}
}
