// Package eval reproduces every table and figure of the paper's
// evaluation (§9) on the simulated substrate: each FigN/TableN function
// runs the corresponding experiment and returns printable rows. The
// cmd/caribou-eval binary and the repository's benchmark suite are thin
// wrappers around this package.
package eval

import (
	"fmt"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/core"
	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/workloads"
)

// EvalStart is the paper's carbon-data window start (2023-10-15).
var EvalStart = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

// Strategy selects how a run is deployed.
type Strategy struct {
	// Coarse pins the whole workflow to one region; empty means fine-
	// grained Caribou solving.
	Coarse region.ID
}

// Fine is the Caribou fine-grained strategy.
var Fine = Strategy{}

// CoarseIn returns a coarse single-region strategy.
func CoarseIn(r region.ID) Strategy { return Strategy{Coarse: r} }

func (s Strategy) String() string {
	if s.Coarse != "" {
		return "coarse(" + string(s.Coarse)[4:] + ")"
	}
	return "fine"
}

// RunConfig parameterizes one experiment run.
type RunConfig struct {
	Workload *workloads.Workload
	Class    workloads.InputClass
	// Regions is the candidate set (home must be included).
	Regions  []region.ID
	Home     region.ID
	Strategy Strategy
	// PlanTx is the transmission model the solver optimizes under
	// (fine strategy only).
	PlanTx carbon.TransmissionModel
	// Tolerances bound fine-grained plans; default allows 25 % latency
	// slack, the loose-QoS setting of the headline experiments.
	Tolerances *solver.Tolerances
	// PerDay invocations are spread uniformly over each day.
	PerDay int
	// BenchFraction overrides the benchmarking-traffic share for fine
	// runs (0 keeps the 10 % default).
	BenchFraction float64
	// WarmupDays run home-only to seed metrics; EvalDays are measured.
	WarmupDays, EvalDays int
	Seed                 int64
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Home == "" {
		c.Home = region.USEast1
	}
	if len(c.Regions) == 0 {
		c.Regions = region.EvaluationFour()
	}
	if c.PerDay == 0 {
		c.PerDay = 192
	}
	if c.WarmupDays == 0 {
		c.WarmupDays = 1
	}
	if c.EvalDays == 0 {
		c.EvalDays = 1
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	if c.PlanTx == (carbon.TransmissionModel{}) {
		c.PlanTx = carbon.BestCase()
	}
	return c
}

// Result of one run: the environment (for accounting) and the index of
// the first measured record in App.Records.
type Result struct {
	Env   *core.Env
	App   *core.App
	Start int
}

// Run executes a single strategy run: warmup at home, then the measured
// phase under the strategy's deployment.
func Run(cfg RunConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	total := time.Duration(cfg.WarmupDays+cfg.EvalDays) * 24 * time.Hour
	env, err := core.NewEnv(core.EnvConfig{
		Seed:    cfg.Seed,
		Start:   EvalStart,
		End:     EvalStart.Add(total),
		Regions: cfg.Regions,
	})
	if err != nil {
		return nil, err
	}
	tol := solver.Tolerances{Latency: solver.Tol(25)}
	if cfg.Tolerances != nil {
		tol = *cfg.Tolerances
	}
	app, err := env.NewApp(core.AppConfig{
		Workload:  cfg.Workload,
		Home:      cfg.Home,
		Mode:      executor.ModeCaribou,
		Objective: solver.Objective{Priority: solver.PriorityCarbon, Tolerances: tol},
		Tx:        cfg.PlanTx,
		Regions:   cfg.Regions,
		Seed:      cfg.Seed,
		// Benchmarking traffic stays on for fine runs (part of
		// Caribou's cost); coarse manual deployments have none.
		BenchFraction: benchFractionFor(cfg.Strategy, cfg.BenchFraction),
	})
	if err != nil {
		return nil, err
	}

	gap := 24 * time.Hour / time.Duration(cfg.PerDay)

	// Warmup phase: home only.
	app.ScheduleUniform(EvalStart, cfg.WarmupDays*cfg.PerDay, gap, cfg.Class)
	evalStartT := EvalStart.Add(time.Duration(cfg.WarmupDays) * 24 * time.Hour)
	env.RunUntil(evalStartT)
	startIdx := len(app.Records)

	// Deploy the strategy.
	if cfg.Strategy.Coarse != "" {
		plan := dag.NewHomePlan(cfg.Workload.DAG, cfg.Strategy.Coarse)
		plans := dag.Uniform(plan)
		if _, err := app.DeployPlanRegions(plans); err != nil {
			return nil, err
		}
		app.SetStaticPlans(plans)
		app.ScheduleUniform(evalStartT, cfg.EvalDays*cfg.PerDay, gap, cfg.Class)
		env.Run()
	} else {
		// Fine-grained: solve fresh hourly plans at each eval day
		// start, run that day.
		for d := 0; d < cfg.EvalDays; d++ {
			dayStart := evalStartT.Add(time.Duration(d) * 24 * time.Hour)
			if err := app.Metrics.RefreshForecasts(dayStart); err != nil {
				return nil, err
			}
			plans, _, err := app.Solver.SolveHourly(dayStart, dayStart)
			if err != nil {
				return nil, err
			}
			if _, err := app.DeployPlanRegions(plans); err != nil {
				return nil, err
			}
			app.SetStaticPlans(plans)
			app.ScheduleUniform(dayStart, cfg.PerDay, gap, cfg.Class)
			env.RunUntil(dayStart.Add(24 * time.Hour))
		}
		env.Run()
	}

	if len(app.Records) <= startIdx {
		return nil, fmt.Errorf("eval: run produced no measured records (%s, %s)", cfg.Workload.Name, cfg.Strategy)
	}
	return &Result{Env: env, App: app, Start: startIdx}, nil
}

func benchFractionFor(s Strategy, override float64) float64 {
	if s.Coarse != "" {
		return -1 // manual static deployment has no benchmarking split
	}
	if override != 0 {
		return override
	}
	return 0.10
}

// Summarize accounts the measured phase under tx.
func (r *Result) Summarize(tx carbon.TransmissionModel) (core.Summary, error) {
	return r.Env.Summarize(r.App.Records[r.Start:], tx)
}

// SummarizeWindow accounts only measured records completing in [from, to),
// letting multi-day runs report the steady state after the framework's
// learning feedback has corrected initial model error.
func (r *Result) SummarizeWindow(tx carbon.TransmissionModel, from, to time.Time) (core.Summary, error) {
	var recs []*platform.InvocationRecord
	for _, rec := range r.App.Records[r.Start:] {
		if !rec.End.Before(from) && rec.End.Before(to) {
			recs = append(recs, rec)
		}
	}
	return r.Env.Summarize(recs, tx)
}
