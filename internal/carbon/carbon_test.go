package carbon

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var (
	evalFrom = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)
	evalTo   = time.Date(2023, 10, 22, 0, 0, 0, 0, time.UTC)
)

func newSource(t *testing.T) *SyntheticSource {
	t.Helper()
	src, err := NewSyntheticSource(1, evalFrom, evalTo)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func avg(t *testing.T, src *SyntheticSource, zone string) float64 {
	t.Helper()
	v, err := src.Average(zone, evalFrom, evalTo)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestCalibrationMatchesPaperStatistics checks the §2.1/§9.2 anchors: over
// the evaluation window ca-central-1 (CA-QC) averages ~91.5 % below
// us-east-1 (US-MIDA-PJM), us-west-1 (US-CAL-CISO) is a few percent below,
// and us-west-2 (US-NW-PACW) is comparable.
func TestCalibrationMatchesPaperStatistics(t *testing.T) {
	src := newSource(t)
	east := avg(t, src, "US-MIDA-PJM")
	qc := avg(t, src, "CA-QC")
	ciso := avg(t, src, "US-CAL-CISO")
	pacw := avg(t, src, "US-NW-PACW")

	if r := qc / east; r < 0.05 || r > 0.13 {
		t.Errorf("CA-QC/PJM ratio = %.3f, want ~0.085 (91.5%% lower)", r)
	}
	if r := ciso / east; r < 0.85 || r > 1.0 {
		t.Errorf("CISO/PJM ratio = %.3f, want slightly below 1 (6.1%% lower)", r)
	}
	if r := pacw / east; r < 0.85 || r > 1.12 {
		t.Errorf("PACW/PJM ratio = %.3f, want comparable", r)
	}
}

// TestSolarDiurnalSwing verifies the CISO solar trough: midday intensity
// is markedly lower than night-time intensity (§2.1), and much more so
// than for the hydro-dominated Quebec grid.
func TestSolarDiurnalSwing(t *testing.T) {
	src := newSource(t)
	swing := func(zone string, utcOffset int) float64 {
		var daySum, nightSum float64
		var dayN, nightN int
		for ts := evalFrom; ts.Before(evalTo); ts = ts.Add(time.Hour) {
			local := (ts.Hour() + utcOffset + 48) % 24
			v, err := src.At(zone, ts)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case local >= 11 && local <= 15:
				daySum += v
				dayN++
			case local >= 23 || local <= 3:
				nightSum += v
				nightN++
			}
		}
		return (nightSum / float64(nightN)) / (daySum / float64(dayN))
	}
	ciso := swing("US-CAL-CISO", -8)
	qc := swing("CA-QC", -5)
	if ciso < 1.3 {
		t.Errorf("CISO night/day ratio = %.2f, want strong solar swing > 1.3", ciso)
	}
	if qc > 1.15 {
		t.Errorf("CA-QC night/day ratio = %.2f, want nearly flat", qc)
	}
	if ciso <= qc {
		t.Errorf("CISO swing (%.2f) should exceed QC swing (%.2f)", ciso, qc)
	}
}

func TestSourceDeterminism(t *testing.T) {
	a := newSource(t)
	b := newSource(t)
	for ts := evalFrom; ts.Before(evalFrom.Add(48 * time.Hour)); ts = ts.Add(time.Hour) {
		va, _ := a.At("US-MIDA-PJM", ts)
		vb, _ := b.At("US-MIDA-PJM", ts)
		if va != vb {
			t.Fatalf("same seed diverged at %v: %v vs %v", ts, va, vb)
		}
	}
	c, err := NewSyntheticSource(2, evalFrom, evalTo)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for ts := evalFrom; ts.Before(evalFrom.Add(48 * time.Hour)); ts = ts.Add(time.Hour) {
		va, _ := a.At("US-MIDA-PJM", ts)
		vc, _ := c.At("US-MIDA-PJM", ts)
		if va != vc {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical noise")
	}
}

func TestSourceErrors(t *testing.T) {
	src := newSource(t)
	if _, err := src.At("XX-NOWHERE", evalFrom); err == nil {
		t.Error("want unknown-zone error")
	}
	if _, err := src.At("CA-QC", evalFrom.Add(-time.Hour)); err == nil {
		t.Error("want out-of-horizon error (before)")
	}
	if _, err := src.At("CA-QC", evalTo.Add(time.Hour)); err == nil {
		t.Error("want out-of-horizon error (after)")
	}
	if _, err := NewSyntheticSource(1, evalTo, evalFrom); err == nil {
		t.Error("want error when end precedes start")
	}
}

func TestHourlyFloorLookup(t *testing.T) {
	src := newSource(t)
	a, _ := src.At("CA-QC", evalFrom.Add(10*time.Minute))
	b, _ := src.At("CA-QC", evalFrom.Add(50*time.Minute))
	if a != b {
		t.Error("values within one hour should be identical")
	}
}

func TestIntensityAboveFloor(t *testing.T) {
	src := newSource(t)
	for _, zone := range src.Zones() {
		hs, err := src.Hourly(zone, evalFrom, evalTo)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range hs {
			if v <= 0 {
				t.Fatalf("%s hour %d: non-positive intensity %v", zone, i, v)
			}
		}
	}
}

func TestExecutionEnergyKnownValue(t *testing.T) {
	// One vCPU (1769 MB) for 3600 s at full utilization:
	// E_mem = 3.725e-4 * (1769/1024) * 1 = 6.435e-4 kWh
	// E_proc = 3.5e-3 * 1 * 1 = 3.5e-3 kWh
	got := ExecutionEnergyKWh(1769, 3600, 1.0)
	want := MemPowerKWPerGB*(1769.0/1024) + PMaxKWPerVCPU
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestExecutionCarbonAppliesPUEAndIntensity(t *testing.T) {
	e := ExecutionEnergyKWh(1769, 3600, 0.5)
	got := ExecutionCarbon(400, 1769, 3600, 0.5)
	want := 400 * e * PUE
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("carbon = %v, want %v", got, want)
	}
}

// TestExecutionFactorsBitIdentical pins the hoisted-coefficient form to
// the direct model: exact equality (not tolerance) across a grid that
// covers the clamping edges, because the Monte Carlo tape replay relies
// on the two computing the same float64 in the same operation order.
func TestExecutionFactorsBitIdentical(t *testing.T) {
	mems := []float64{-5, 0, 128, 1024, 1769, 10240}
	utils := []float64{-0.5, 0, 0.3, 0.8, 1, 2}
	durs := []float64{-1, 0, 1e-6, 0.37, 3, 3600, 1e5}
	intensities := []float64{0, 35, 400, 1123.456}
	for _, mem := range mems {
		for _, util := range utils {
			memKW, procKW := ExecutionFactors(mem, util)
			for _, dur := range durs {
				for _, in := range intensities {
					want := ExecutionCarbon(in, mem, dur, util)
					got := ExecutionCarbonFromFactors(in, memKW, procKW, dur)
					if got != want {
						t.Fatalf("mem=%v util=%v dur=%v in=%v: factored %v != direct %v",
							mem, util, dur, in, got, want)
					}
				}
			}
		}
	}
}

func TestExecutionClamping(t *testing.T) {
	if ExecutionEnergyKWh(-5, 10, 0.5) != 0 {
		t.Error("negative memory should clamp to zero energy")
	}
	if ExecutionEnergyKWh(1769, -1, 0.5) != 0 {
		t.Error("negative duration should clamp to zero energy")
	}
	over := ExecutionEnergyKWh(1769, 100, 2.0)
	atMax := ExecutionEnergyKWh(1769, 100, 1.0)
	if over != atMax {
		t.Error("utilization should clamp at 1")
	}
}

func TestQuickExecutionCarbonMonotonic(t *testing.T) {
	f := func(mem16, dur16 uint16, util8 uint8) bool {
		mem := float64(mem16)
		dur := float64(dur16)
		util := float64(util8) / 255
		base := ExecutionEnergyKWh(mem, dur, util)
		return ExecutionEnergyKWh(mem+128, dur, util) >= base &&
			ExecutionEnergyKWh(mem, dur+60, util) >= base &&
			ExecutionEnergyKWh(mem, dur, math.Min(util+0.1, 1)) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransmissionScenarios(t *testing.T) {
	best, worst := BestCase(), WorstCase()
	const gb = 1e9

	// Inter-region, equal endpoint intensities: route = intensity.
	if got, want := best.Carbon(400, 400, false, gb), 400*0.001; math.Abs(got-want) > 1e-9 {
		t.Errorf("best inter = %v, want %v", got, want)
	}
	if got, want := worst.Carbon(400, 400, false, gb), 400*0.005; math.Abs(got-want) > 1e-9 {
		t.Errorf("worst inter = %v, want %v", got, want)
	}
	// Intra-region: free only in the worst case.
	if got := worst.Carbon(400, 400, true, gb); got != 0 {
		t.Errorf("worst intra = %v, want 0", got)
	}
	if got := best.Carbon(400, 400, true, gb); got <= 0 {
		t.Errorf("best intra = %v, want > 0", got)
	}
	// Route intensity is the endpoint average.
	got := best.Carbon(100, 300, false, gb)
	if want := 200 * 0.001; math.Abs(got-want) > 1e-9 {
		t.Errorf("route average: %v, want %v", got, want)
	}
	// Zero or negative bytes are free.
	if best.Carbon(400, 400, false, 0) != 0 || best.Carbon(400, 400, false, -5) != 0 {
		t.Error("non-positive bytes should be free")
	}
}

func TestUniformAndFreeIntraConstructors(t *testing.T) {
	u := Uniform(0.002)
	if u.InterRegionKWhPerGB != 0.002 || u.IntraRegionKWhPerGB != 0.002 {
		t.Errorf("Uniform = %+v", u)
	}
	f := FreeIntra(0.003)
	if f.InterRegionKWhPerGB != 0.003 || f.IntraRegionKWhPerGB != 0 {
		t.Errorf("FreeIntra = %+v", f)
	}
}

func TestQuickTransmissionLinearInBytes(t *testing.T) {
	m := BestCase()
	f := func(b16 uint16) bool {
		b := float64(b16)
		one := m.Carbon(300, 500, false, b)
		two := m.Carbon(300, 500, false, 2*b)
		return math.Abs(two-2*one) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHorizonAccessors(t *testing.T) {
	src := newSource(t)
	if !src.Start().Equal(evalFrom) {
		t.Errorf("Start = %v", src.Start())
	}
	if !src.End().Equal(evalTo) {
		t.Errorf("End = %v", src.End())
	}
	if len(src.Zones()) < 5 {
		t.Errorf("zones = %v", src.Zones())
	}
}
