package carbon

import (
	"sync"
	"testing"
	"time"
)

func TestSharedSourceReturnsOneInstancePerKey(t *testing.T) {
	start := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(48 * time.Hour)

	a, err := SharedSource(42, start, end)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedSource(42, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical (seed, window) should share one SyntheticSource")
	}
	// A sub-hour offset that truncates to the same hourly grid shares too.
	c, err := SharedSource(42, start.Add(20*time.Minute), end.Add(-20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Error("windows canonicalizing to the same hourly trace should share")
	}

	d, err := SharedSource(43, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("different seeds must not share a source")
	}
	e, err := SharedSource(42, start, end.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if e == a {
		t.Error("different horizons must not share a source")
	}
}

func TestSharedSourceMatchesFreshSynthesis(t *testing.T) {
	start := time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)
	end := start.Add(72 * time.Hour)
	shared, err := SharedSource(7, start, end)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSyntheticSource(7, start, end)
	if err != nil {
		t.Fatal(err)
	}
	for _, zone := range []string{"US-MIDA-PJM", "CA-QC"} {
		for h := 0; h < 72; h++ {
			at := start.Add(time.Duration(h) * time.Hour)
			a, err := shared.At(zone, at)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.At(zone, at)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%s h=%d: shared %v != fresh %v", zone, h, a, b)
			}
		}
	}
}

func TestSharedSourceInvalidWindow(t *testing.T) {
	start := time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)
	if _, err := SharedSource(1, start, start); err == nil {
		t.Error("empty window should error")
	}
	if _, err := SharedSource(1, start, start.Add(-time.Hour)); err == nil {
		t.Error("inverted window should error")
	}
}

func TestSharedSourceConcurrentFirstUse(t *testing.T) {
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(24 * time.Hour)
	const n = 16
	srcs := make([]*SyntheticSource, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := SharedSource(999, start, end)
			if err != nil {
				t.Error(err)
				return
			}
			srcs[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if srcs[i] != srcs[0] {
			t.Fatal("concurrent first use produced distinct sources")
		}
	}
}
