package carbon

import (
	"sync"
	"time"
)

// The evaluation harness builds one isolated Env per experiment run, and
// every Env used to synthesize its own carbon traces — the single most
// expensive part of Env construction, repeated byte-identically across
// runs sharing a (seed, window). SyntheticSource is immutable after
// construction, so identical sources can be shared freely, including by
// Envs running concurrently on different worker goroutines.

// traceKey canonicalizes NewSyntheticSource's inputs: start is truncated
// to the hour and the horizon reduced to an hour count, exactly as the
// constructor does, so windows that materialize the same trace share one
// entry.
type traceKey struct {
	seed  int64
	start int64 // unix seconds of the truncated start
	hours int
}

// traceEntry singleflights synthesis: concurrent first requests for a key
// synthesize once and share the result.
type traceEntry struct {
	once sync.Once
	src  *SyntheticSource
	err  error
}

var traceCache struct {
	mu sync.Mutex
	m  map[traceKey]*traceEntry
}

// SharedSource returns a memoized SyntheticSource for (seed, [start, end)),
// synthesizing it on first use. Callers must treat the result as
// immutable; it may be shared with concurrently running environments. The
// cache is unbounded but keyed by the handful of distinct (seed, window)
// pairs an evaluation sweep touches.
func SharedSource(seed int64, start, end time.Time) (*SyntheticSource, error) {
	trunc := start.UTC().Truncate(time.Hour)
	if !end.After(trunc) {
		// Delegate invalid windows so the error (and its message) stays in
		// one place.
		return NewSyntheticSource(seed, start, end)
	}
	hours := int(end.Sub(trunc) / time.Hour)
	if end.Sub(trunc)%time.Hour != 0 {
		hours++
	}
	key := traceKey{seed: seed, start: trunc.Unix(), hours: hours}

	traceCache.mu.Lock()
	if traceCache.m == nil {
		traceCache.m = make(map[traceKey]*traceEntry)
	}
	e, ok := traceCache.m[key]
	if !ok {
		e = &traceEntry{}
		traceCache.m[key] = e
	}
	traceCache.mu.Unlock()

	e.once.Do(func() {
		e.src, e.err = NewSyntheticSource(seed, start, end)
	})
	return e.src, e.err
}
