package carbon

// Operational carbon models of §7.1. Execution carbon follows Eqs 7.1-7.4;
// transmission carbon follows Eq 7.5. Embodied carbon is deliberately
// excluded: the paper argues it is a sunk cost equal across regions and so
// cancels out of every relative comparison Caribou makes.

// Execution model constants (§7.1, with citations as in the paper).
const (
	// PUE is the power usage effectiveness applied to all datacenter
	// energy; 1.11 is the midpoint of the 1.07-1.15 AWS range.
	PUE = 1.11
	// MemPowerKWPerGB is the power draw attributed to provisioned
	// function memory (3.725e-4 kW/GB).
	MemPowerKWPerGB = 3.725e-4
	// MBPerVCPU converts a Lambda memory size to its vCPU share
	// (n_vcpu = mem/1769).
	MBPerVCPU = 1769.0
	// PMinKWPerVCPU and PMaxKWPerVCPU bound the linear
	// utilization-based per-core power model.
	PMinKWPerVCPU = 7.5e-4
	PMaxKWPerVCPU = 3.5e-3
)

// ExecutionEnergyKWh returns the energy attributed to one function
// execution: memMB of provisioned memory for durationSec seconds at the
// given average vCPU utilization in [0, 1]. PUE is not applied here; it is
// applied with the grid intensity in ExecutionCarbon.
func ExecutionEnergyKWh(memMB, durationSec, cpuUtil float64) float64 {
	if memMB < 0 {
		memMB = 0
	}
	if durationSec < 0 {
		durationSec = 0
	}
	if cpuUtil < 0 {
		cpuUtil = 0
	}
	if cpuUtil > 1 {
		cpuUtil = 1
	}
	hours := durationSec / 3600
	eMem := MemPowerKWPerGB * (memMB / 1024) * hours // Eq 7.2
	nVCPU := memMB / MBPerVCPU
	pVCPU := PMinKWPerVCPU + cpuUtil*(PMaxKWPerVCPU-PMinKWPerVCPU) // Eq 7.3
	eProc := pVCPU * nVCPU * hours                                 // Eq 7.4
	return eMem + eProc
}

// ExecutionCarbon returns grams of CO2-eq for one execution (Eq 7.1):
// grid intensity (gCO2eq/kWh) times energy times PUE.
func ExecutionCarbon(intensity, memMB, durationSec, cpuUtil float64) float64 {
	return intensity * ExecutionEnergyKWh(memMB, durationSec, cpuUtil) * PUE
}

// ExecutionFactors returns the duration-independent coefficients of the
// energy model: ExecutionEnergyKWh(mem, dur, util) computes exactly
// memKW·hours + procKW·hours, and both coefficients are the literal
// intermediate products of that evaluation, so a caller that fixes
// (memMB, cpuUtil) — e.g. per workflow stage — can hoist them and
// reproduce ExecutionCarbon bit for bit via ExecutionCarbonFromFactors.
func ExecutionFactors(memMB, cpuUtil float64) (memKW, procKW float64) {
	if memMB < 0 {
		memMB = 0
	}
	if cpuUtil < 0 {
		cpuUtil = 0
	}
	if cpuUtil > 1 {
		cpuUtil = 1
	}
	memKW = MemPowerKWPerGB * (memMB / 1024)
	nVCPU := memMB / MBPerVCPU
	pVCPU := PMinKWPerVCPU + cpuUtil*(PMaxKWPerVCPU-PMinKWPerVCPU)
	procKW = pVCPU * nVCPU
	return memKW, procKW
}

// ExecutionCarbonFromFactors is ExecutionCarbon with the ExecutionFactors
// coefficients pre-resolved: identical arithmetic in identical order, so
// results are bit-identical to the unfactored call (pinned by
// TestExecutionFactorsBitIdentical).
func ExecutionCarbonFromFactors(intensity, memKW, procKW, durationSec float64) float64 {
	if durationSec < 0 {
		durationSec = 0
	}
	hours := durationSec / 3600
	return intensity * (memKW*hours + procKW*hours) * PUE
}

// TransmissionModel parameterizes Eq 7.5 with separate inter- and
// intra-region energy factors (kWh/GB). The paper brackets today's
// uncertain network energy models with a best case (0.001 everywhere) and a
// worst case (0.005 inter-region, free intra-region), and sweeps the factor
// in §9.3.
type TransmissionModel struct {
	InterRegionKWhPerGB float64
	IntraRegionKWhPerGB float64
}

// BestCase is the paper's best-case scenario for offloading: 0.001 kWh/GB
// for any transmission, including within a region.
func BestCase() TransmissionModel {
	return TransmissionModel{InterRegionKWhPerGB: 0.001, IntraRegionKWhPerGB: 0.001}
}

// WorstCase is the paper's worst-case scenario: 0.005 kWh/GB inter-region
// and free intra-region transmission, which maximally penalizes offloading.
func WorstCase() TransmissionModel {
	return TransmissionModel{InterRegionKWhPerGB: 0.005, IntraRegionKWhPerGB: 0}
}

// Uniform returns a model applying the same factor everywhere
// (§9.3 "Equal Intra/Inter Tx Factor" scenario).
func Uniform(kwhPerGB float64) TransmissionModel {
	return TransmissionModel{InterRegionKWhPerGB: kwhPerGB, IntraRegionKWhPerGB: kwhPerGB}
}

// FreeIntra returns a model with the given inter-region factor and free
// intra-region transmission (§9.3 "Free Intra Tx Factor" scenario).
func FreeIntra(interKWhPerGB float64) TransmissionModel {
	return TransmissionModel{InterRegionKWhPerGB: interKWhPerGB, IntraRegionKWhPerGB: 0}
}

// Carbon returns grams of CO2-eq for moving bytes from a grid with
// intensity srcIntensity to one with dstIntensity (Eq 7.5). The route
// intensity is approximated as the endpoint average, the simplification the
// paper adopts from prior network energy characterizations.
func (m TransmissionModel) Carbon(srcIntensity, dstIntensity float64, sameRegion bool, bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	factor := m.InterRegionKWhPerGB
	route := (srcIntensity + dstIntensity) / 2
	if sameRegion {
		factor = m.IntraRegionKWhPerGB
		route = srcIntensity
	}
	gb := bytes / 1e9
	return route * factor * gb
}
