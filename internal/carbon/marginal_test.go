package carbon

import (
	"testing"
	"time"
)

func TestMarginalSourceProperties(t *testing.T) {
	base := newSource(t)
	mci := NewMarginalSource(base, 1)

	// MCI sits within the fossil band everywhere.
	for _, zone := range []string{"CA-QC", "US-MIDA-PJM", "US-CAL-CISO"} {
		for ts := evalFrom; ts.Before(evalFrom.Add(48 * time.Hour)); ts = ts.Add(time.Hour) {
			v, err := mci.At(zone, ts)
			if err != nil {
				t.Fatal(err)
			}
			if v < mciFloor || v > mciCeil {
				t.Fatalf("%s at %v: MCI %v outside [%v, %v]", zone, ts, v, mciFloor, mciCeil)
			}
		}
	}
}

func TestMarginalExceedsAverageOnCleanGrids(t *testing.T) {
	base := newSource(t)
	mci := NewMarginalSource(base, 1)
	// Quebec's ACI is ~35; its marginal unit is still fossil, so MCI must
	// be far above ACI — the §7.1 reason the signals can disagree.
	for ts := evalFrom; ts.Before(evalFrom.Add(24 * time.Hour)); ts = ts.Add(time.Hour) {
		aci, _ := base.At("CA-QC", ts)
		m, err := mci.At("CA-QC", ts)
		if err != nil {
			t.Fatal(err)
		}
		if m < 5*aci {
			t.Fatalf("CA-QC MCI %v not far above ACI %v", m, aci)
		}
	}
}

func TestMarginalDeterministicAndHourly(t *testing.T) {
	base := newSource(t)
	a := NewMarginalSource(base, 7)
	b := NewMarginalSource(base, 7)
	v1, err := a.At("US-MIDA-PJM", evalFrom.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := b.At("US-MIDA-PJM", evalFrom.Add(3*time.Hour))
	if v1 != v2 {
		t.Error("same seed diverged")
	}
	// Sub-hour timestamps resolve to the same value.
	v3, _ := a.At("US-MIDA-PJM", evalFrom.Add(3*time.Hour+20*time.Minute))
	if v1 != v3 {
		t.Error("sub-hour lookup differs")
	}
	hs, err := a.Hourly("US-MIDA-PJM", evalFrom, evalFrom.Add(6*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 6 || hs[3] != v1 {
		t.Errorf("hourly = %v", hs)
	}
}

func TestMarginalNoisierThanAverage(t *testing.T) {
	base := newSource(t)
	mci := NewMarginalSource(base, 1)
	variation := func(vals []float64) float64 {
		var sum float64
		for i := 1; i < len(vals); i++ {
			d := vals[i] - vals[i-1]
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum / float64(len(vals)-1)
	}
	aci, err := base.Hourly("US-MIDA-PJM", evalFrom, evalFrom.Add(72*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	m, err := mci.Hourly("US-MIDA-PJM", evalFrom, evalFrom.Add(72*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if variation(m) <= variation(aci) {
		t.Errorf("MCI hour-to-hour variation %v not above ACI %v", variation(m), variation(aci))
	}
}

func TestMarginalPropagatesErrors(t *testing.T) {
	base := newSource(t)
	mci := NewMarginalSource(base, 1)
	if _, err := mci.At("XX-NOWHERE", evalFrom); err == nil {
		t.Error("want error for unknown zone")
	}
}

func TestItoa(t *testing.T) {
	cases := map[int64]string{0: "0", 7: "7", -42: "-42", 123456789: "123456789"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
