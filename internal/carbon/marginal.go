package carbon

import (
	"time"

	"caribou/internal/simclock"
)

// MarginalSource derives a synthetic marginal-carbon-intensity (MCI)
// signal from an average-intensity (ACI) source. The paper uses ACI
// because MCI signals are highly uncertain and hard to verify (§7.1), but
// notes that MCI can lead to different scheduling decisions — this source
// exists to study exactly that sensitivity.
//
// The model captures the two qualitative properties the literature
// reports: the marginal generator is usually a dispatchable fossil unit,
// so MCI sits far above ACI on clean grids and is only weakly coupled to
// the ACI level; and MCI is much noisier hour to hour.
type MarginalSource struct {
	base Source
	seed int64
}

// NewMarginalSource wraps an ACI source.
func NewMarginalSource(base Source, seed int64) *MarginalSource {
	return &MarginalSource{base: base, seed: seed}
}

// MCI model constants: the marginal fossil fleet spans roughly
// combined-cycle gas (~400 gCO2eq/kWh) to coal (~900).
const (
	mciFossilBase  = 480.0
	mciACICoupling = 0.35
	mciNoiseAmp    = 160.0
	mciFloor       = 300.0
	mciCeil        = 950.0
)

// At returns the synthetic marginal intensity for the zone-hour. The
// noise realization is a stable hash of (seed, zone, hour), so the signal
// is deterministic and uncorrelated across hours.
func (m *MarginalSource) At(zone string, t time.Time) (float64, error) {
	aci, err := m.base.At(zone, t)
	if err != nil {
		return 0, err
	}
	hour := t.UTC().Truncate(time.Hour).Unix()
	rng := simclock.DeriveRand(m.seed, "mci/"+zone+"/"+itoa(hour))
	v := mciFossilBase + mciACICoupling*aci + rng.Uniform(-1, 1)*mciNoiseAmp
	if v < mciFloor {
		v = mciFloor
	}
	if v > mciCeil {
		v = mciCeil
	}
	return v, nil
}

// Hourly mirrors SyntheticSource.Hourly so the Metric Manager's
// forecasting path works against MCI too.
func (m *MarginalSource) Hourly(zone string, from, to time.Time) ([]float64, error) {
	var out []float64
	for t := from.UTC().Truncate(time.Hour); t.Before(to); t = t.Add(time.Hour) {
		v, err := m.At(zone, t)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// itoa converts without fmt to keep the hot path allocation-light.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
