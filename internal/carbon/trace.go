// Package carbon provides grid carbon-intensity data and the operational
// carbon models of §7.1. Live Electricity Maps feeds are replaced by
// synthetic hourly traces per grid zone, calibrated to the statistics the
// paper reports for the North American AWS regions: ca-central-1 averages
// 91.5 % below us-east-1, us-west-1 averages 6.1 % below with a strong
// solar-driven diurnal swing, and us-west-2 has a comparable average.
package carbon

import (
	"fmt"
	"math"
	"sort"
	"time"

	"caribou/internal/simclock"
)

// Source supplies the average grid carbon intensity (gCO2eq/kWh) for a grid
// zone at a point in time. Implementations must be deterministic so that
// experiments are reproducible.
type Source interface {
	// At returns the hourly average carbon intensity in effect at t.
	At(zone string, t time.Time) (float64, error)
}

// zoneProfile parameterizes the synthetic trace of one electrical grid.
type zoneProfile struct {
	base       float64 // long-run mean, gCO2eq/kWh
	diurnalAmp float64 // fractional amplitude of the daily cycle
	// solarShare deepens the midday trough: solar-heavy grids (CAISO)
	// are much cleaner at noon than at night (§2.1).
	solarShare float64
	peakHour   float64 // local hour of maximum intensity
	weekendDip float64 // fractional reduction on weekends
	seasonAmp  float64 // fractional amplitude of the annual cycle
	seasonPeak float64 // day-of-year of the annual maximum
	noise      float64 // stddev of the AR(1) hourly noise, fractional
	utcOffset  float64 // hours; converts UTC to local solar time
	floor      float64 // physical lower bound
}

// Profiles for the grid zones referenced by the region catalogue. Values
// are chosen so the 2023-10-15..21 window reproduces the paper's reported
// relative averages (see package comment).
var zoneProfiles = map[string]zoneProfile{
	"US-MIDA-PJM": {base: 410, diurnalAmp: 0.08, solarShare: 0.05, peakHour: 19, weekendDip: 0.04, seasonAmp: 0.06, seasonPeak: 210, noise: 0.03, utcOffset: -5, floor: 120},
	"US-CAL-CISO": {base: 348, diurnalAmp: 0.12, solarShare: 0.55, peakHour: 20, weekendDip: 0.03, seasonAmp: 0.10, seasonPeak: 245, noise: 0.05, utcOffset: -8, floor: 60},
	"US-NW-PACW":  {base: 400, diurnalAmp: 0.10, solarShare: 0.12, peakHour: 18, weekendDip: 0.03, seasonAmp: 0.08, seasonPeak: 225, noise: 0.06, utcOffset: -8, floor: 90},
	"CA-QC":       {base: 34.8, diurnalAmp: 0.05, solarShare: 0.0, peakHour: 18, weekendDip: 0.02, seasonAmp: 0.04, seasonPeak: 20, noise: 0.04, utcOffset: -5, floor: 15},
	"CA-AB":       {base: 540, diurnalAmp: 0.06, solarShare: 0.08, peakHour: 19, weekendDip: 0.03, seasonAmp: 0.05, seasonPeak: 15, noise: 0.03, utcOffset: -7, floor: 250},
	// Global zones for the extension experiments: levels follow public
	// Electricity Maps yearly averages; Sweden is hydro/nuclear-clean,
	// Australia coal-heavy with a strong rooftop-solar trough, Brazil
	// hydro-dominated with southern-hemisphere seasonality.
	"IE":     {base: 290, diurnalAmp: 0.12, solarShare: 0.10, peakHour: 18, weekendDip: 0.04, seasonAmp: 0.08, seasonPeak: 20, noise: 0.06, utcOffset: 0, floor: 80},
	"DE":     {base: 380, diurnalAmp: 0.10, solarShare: 0.30, peakHour: 19, weekendDip: 0.06, seasonAmp: 0.08, seasonPeak: 15, noise: 0.05, utcOffset: 1, floor: 100},
	"SE":     {base: 28, diurnalAmp: 0.05, solarShare: 0.0, peakHour: 18, weekendDip: 0.02, seasonAmp: 0.05, seasonPeak: 20, noise: 0.04, utcOffset: 1, floor: 12},
	"JP-TK":  {base: 460, diurnalAmp: 0.08, solarShare: 0.18, peakHour: 19, weekendDip: 0.03, seasonAmp: 0.06, seasonPeak: 210, noise: 0.04, utcOffset: 9, floor: 200},
	"AU-NSW": {base: 560, diurnalAmp: 0.10, solarShare: 0.45, peakHour: 19, weekendDip: 0.04, seasonAmp: 0.07, seasonPeak: 190, noise: 0.05, utcOffset: 10, floor: 150},
	"BR-CS":  {base: 95, diurnalAmp: 0.07, solarShare: 0.12, peakHour: 19, weekendDip: 0.03, seasonAmp: 0.10, seasonPeak: 250, noise: 0.06, utcOffset: -3, floor: 35},
}

// SyntheticSource produces deterministic hourly carbon-intensity traces for
// the known grid zones over a fixed horizon, materialized eagerly so that
// lookups are O(1) and identical across runs.
type SyntheticSource struct {
	start  time.Time
	hours  int
	traces map[string][]float64
}

// NewSyntheticSource materializes traces for every known zone covering
// [start, end). start is truncated to the hour. The seed selects the noise
// realization; the calibrated structure is seed-independent.
func NewSyntheticSource(seed int64, start, end time.Time) (*SyntheticSource, error) {
	start = start.UTC().Truncate(time.Hour)
	if !end.After(start) {
		return nil, fmt.Errorf("carbon: end %v not after start %v", end, start)
	}
	hours := int(end.Sub(start) / time.Hour)
	if end.Sub(start)%time.Hour != 0 {
		hours++
	}
	s := &SyntheticSource{start: start, hours: hours, traces: make(map[string][]float64)}
	for zone, p := range zoneProfiles {
		s.traces[zone] = synthesize(p, simclock.DeriveRand(seed, "carbon/"+zone), start, hours)
	}
	return s, nil
}

func synthesize(p zoneProfile, rng *simclock.Rand, start time.Time, hours int) []float64 {
	out := make([]float64, hours)
	ar := 0.0
	const arCoef = 0.85
	for h := 0; h < hours; h++ {
		t := start.Add(time.Duration(h) * time.Hour)
		localHour := math.Mod(float64(t.Hour())+float64(t.Minute())/60+p.utcOffset+48, 24)

		// Daily cycle: a cosine peaking at peakHour...
		daily := p.diurnalAmp * math.Cos(2*math.Pi*(localHour-p.peakHour)/24)
		// ...deepened by a solar trough centered on 13:00 local. The
		// trough term integrates to roughly zero over the day so the
		// calibrated mean survives.
		solarElev := math.Cos(2 * math.Pi * (localHour - 13) / 24) // 1 at 13:00, -1 at 01:00
		daily -= p.solarShare * 0.5 * solarElev

		// Annual cycle.
		doy := float64(t.YearDay())
		annual := p.seasonAmp * math.Cos(2*math.Pi*(doy-p.seasonPeak)/365)

		// Weekend demand dip.
		weekend := 0.0
		if wd := t.Weekday(); wd == time.Saturday || wd == time.Sunday {
			weekend = -p.weekendDip
		}

		// AR(1) hourly noise keeps consecutive hours correlated like
		// real grid data.
		ar = arCoef*ar + rng.Normal(0, p.noise)

		v := p.base * (1 + daily + annual + weekend + ar)
		if v < p.floor {
			v = p.floor
		}
		out[h] = v
	}
	return out
}

// At implements Source with floor-to-hour lookup.
func (s *SyntheticSource) At(zone string, t time.Time) (float64, error) {
	tr, ok := s.traces[zone]
	if !ok {
		return 0, fmt.Errorf("carbon: unknown grid zone %q", zone)
	}
	h := int(t.UTC().Sub(s.start) / time.Hour)
	if h < 0 || h >= len(tr) {
		return 0, fmt.Errorf("carbon: time %v outside trace horizon [%v, +%dh)", t, s.start, s.hours)
	}
	return tr[h], nil
}

// Hourly returns the trace slice for [from, to) at hourly resolution.
func (s *SyntheticSource) Hourly(zone string, from, to time.Time) ([]float64, error) {
	var out []float64
	for t := from.UTC().Truncate(time.Hour); t.Before(to); t = t.Add(time.Hour) {
		v, err := s.At(zone, t)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Average returns the mean intensity over [from, to).
func (s *SyntheticSource) Average(zone string, from, to time.Time) (float64, error) {
	hs, err := s.Hourly(zone, from, to)
	if err != nil {
		return 0, err
	}
	if len(hs) == 0 {
		return 0, fmt.Errorf("carbon: empty averaging window")
	}
	var sum float64
	for _, v := range hs {
		sum += v
	}
	return sum / float64(len(hs)), nil
}

// Start returns the first instant covered by the source.
func (s *SyntheticSource) Start() time.Time { return s.start }

// End returns the first instant no longer covered by the source.
func (s *SyntheticSource) End() time.Time { return s.start.Add(time.Duration(s.hours) * time.Hour) }

// Zones lists the grid zones with materialized traces.
func (s *SyntheticSource) Zones() []string {
	out := make([]string, 0, len(s.traces))
	for z := range s.traces {
		out = append(out, z)
	}
	sort.Strings(out)
	return out
}
