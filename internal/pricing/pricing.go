// Package pricing models the cloud price book used by the Metric Manager's
// cost model (§7.1): Lambda compute (GB-seconds plus a per-invocation fee),
// SNS messaging, DynamoDB accesses introduced by Caribou's geospatial
// shifting, and inter-region egress. Values follow the public 2024 AWS
// list prices; the free tier is not modeled, matching the paper.
package pricing

import (
	"fmt"

	"caribou/internal/region"
)

// RegionPrices holds the per-region unit prices in USD.
type RegionPrices struct {
	LambdaGBSecondUSD float64 // per GB-second of configured memory
	LambdaRequestUSD  float64 // per invocation
	SNSPublishUSD     USD     // per publish
	DynamoWriteUSD    USD     // per write request unit
	DynamoReadUSD     USD     // per read request unit
}

// USD is a price in United States dollars.
type USD = float64

// Book is an immutable price catalogue.
type Book struct {
	regions             map[region.ID]RegionPrices
	interRegionEgressGB USD // per GB between two regions of the provider
	intraRegionEgressGB USD // per GB within one region
}

// baseline us-east-1 unit prices.
const (
	baseGBSecond  = 0.0000166667
	baseRequest   = 0.20 / 1e6
	baseSNS       = 0.50 / 1e6
	baseDynWrite  = 1.25 / 1e6
	baseDynRead   = 0.25 / 1e6
	interEgressGB = 0.02
)

// regionCostFactor scales compute-adjacent prices relative to us-east-1.
// us-west-1 is the notably pricier NA region.
var regionCostFactor = map[region.ID]float64{
	region.USEast1:    1.00,
	region.USEast2:    1.00,
	region.USWest1:    1.11,
	region.USWest2:    1.00,
	region.CACentral1: 1.01,
	region.CAWest1:    1.04,
}

// DefaultBook returns the price book for the North American catalogue.
// Unknown regions fall back to us-east-1 prices via Prices.
func DefaultBook() *Book {
	b := &Book{
		regions:             make(map[region.ID]RegionPrices, len(regionCostFactor)),
		interRegionEgressGB: interEgressGB,
		intraRegionEgressGB: 0,
	}
	for id, f := range regionCostFactor {
		b.regions[id] = RegionPrices{
			LambdaGBSecondUSD: baseGBSecond * f,
			LambdaRequestUSD:  baseRequest,
			SNSPublishUSD:     baseSNS,
			DynamoWriteUSD:    baseDynWrite,
			DynamoReadUSD:     baseDynRead,
		}
	}
	return b
}

// Prices returns the unit prices for a region, defaulting to us-east-1
// rates when the region is not in the book.
func (b *Book) Prices(id region.ID) RegionPrices {
	if p, ok := b.regions[id]; ok {
		return p
	}
	return b.regions[region.USEast1]
}

// ExecutionCost returns the Lambda cost of one execution: configured
// memory (MB) for durationSec seconds plus the per-invocation fee.
func (b *Book) ExecutionCost(id region.ID, memMB, durationSec float64) USD {
	if memMB < 0 || durationSec < 0 {
		return 0
	}
	p := b.Prices(id)
	gbSeconds := memMB / 1024 * durationSec
	return gbSeconds*p.LambdaGBSecondUSD + p.LambdaRequestUSD
}

// EgressCost returns the data-transfer cost of moving bytes from src to
// dst. Intra-region transfer is free; inter-region transfer is billed per
// GB to the source region's owner, matching AWS egress fees.
func (b *Book) EgressCost(src, dst region.ID, bytes float64) USD {
	if bytes <= 0 {
		return 0
	}
	gb := bytes / 1e9
	if src == dst {
		return gb * b.intraRegionEgressGB
	}
	return gb * b.interRegionEgressGB
}

// SNSCost returns the cost of publishes SNS messages in the region.
func (b *Book) SNSCost(id region.ID, publishes int) USD {
	if publishes <= 0 {
		return 0
	}
	return float64(publishes) * b.Prices(id).SNSPublishUSD
}

// DynamoCost returns the cost of the given DynamoDB read and write request
// units in the region. Caribou's wrapper performs these accesses for DP
// retrieval and sync-node annotations.
func (b *Book) DynamoCost(id region.ID, reads, writes int) USD {
	var c USD
	p := b.Prices(id)
	if reads > 0 {
		c += float64(reads) * p.DynamoReadUSD
	}
	if writes > 0 {
		c += float64(writes) * p.DynamoWriteUSD
	}
	return c
}

// String summarizes the book for diagnostics.
func (b *Book) String() string {
	return fmt.Sprintf("pricing.Book{%d regions, inter-egress $%.3f/GB}", len(b.regions), b.interRegionEgressGB)
}
