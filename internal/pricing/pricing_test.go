package pricing

import (
	"math"
	"testing"
	"testing/quick"

	"caribou/internal/region"
)

func TestExecutionCostKnownValue(t *testing.T) {
	b := DefaultBook()
	// 1024 MB for 10 s in us-east-1: 10 GB-s at $0.0000166667 plus the
	// $0.20/1M request fee.
	got := b.ExecutionCost(region.USEast1, 1024, 10)
	want := 10*0.0000166667 + 0.20/1e6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

func TestExecutionCostRegionFactor(t *testing.T) {
	b := DefaultBook()
	east := b.ExecutionCost(region.USEast1, 1769, 60)
	west1 := b.ExecutionCost(region.USWest1, 1769, 60)
	if west1 <= east {
		t.Errorf("us-west-1 (%v) should be pricier than us-east-1 (%v)", west1, east)
	}
	if r := west1 / east; r > 1.15 {
		t.Errorf("us-west-1 premium %.3f implausibly large", r)
	}
}

func TestExecutionCostNegativeInputs(t *testing.T) {
	b := DefaultBook()
	if b.ExecutionCost(region.USEast1, -1, 10) != 0 {
		t.Error("negative memory should cost 0")
	}
	if b.ExecutionCost(region.USEast1, 1024, -1) != 0 {
		t.Error("negative duration should cost 0")
	}
}

func TestEgress(t *testing.T) {
	b := DefaultBook()
	if c := b.EgressCost(region.USEast1, region.USEast1, 5e9); c != 0 {
		t.Errorf("intra-region egress = %v, want 0", c)
	}
	got := b.EgressCost(region.USEast1, region.USWest2, 1e9)
	if math.Abs(got-0.02) > 1e-12 {
		t.Errorf("inter-region egress = %v, want 0.02", got)
	}
	if b.EgressCost(region.USEast1, region.USWest2, 0) != 0 {
		t.Error("zero bytes should be free")
	}
	if b.EgressCost(region.USEast1, region.USWest2, -1) != 0 {
		t.Error("negative bytes should be free")
	}
}

func TestServiceCosts(t *testing.T) {
	b := DefaultBook()
	if got, want := b.SNSCost(region.USEast1, 1e6), 0.50; math.Abs(got-want) > 1e-9 {
		t.Errorf("1M SNS publishes = %v, want %v", got, want)
	}
	if got, want := b.DynamoCost(region.USEast1, 1e6, 0), 0.25; math.Abs(got-want) > 1e-9 {
		t.Errorf("1M reads = %v, want %v", got, want)
	}
	if got, want := b.DynamoCost(region.USEast1, 0, 1e6), 1.25; math.Abs(got-want) > 1e-9 {
		t.Errorf("1M writes = %v, want %v", got, want)
	}
	if b.SNSCost(region.USEast1, -3) != 0 || b.DynamoCost(region.USEast1, -1, -1) != 0 {
		t.Error("negative counts should cost 0")
	}
}

func TestUnknownRegionFallsBackToUSEast1(t *testing.T) {
	b := DefaultBook()
	got := b.ExecutionCost("aws:mars-north-1", 1024, 10)
	want := b.ExecutionCost(region.USEast1, 1024, 10)
	if got != want {
		t.Errorf("fallback pricing = %v, want %v", got, want)
	}
}

func TestQuickCostLinearInDuration(t *testing.T) {
	b := DefaultBook()
	f := func(d16 uint16) bool {
		d := float64(d16)
		p := b.Prices(region.USEast1)
		one := b.ExecutionCost(region.USEast1, 2048, d) - p.LambdaRequestUSD
		two := b.ExecutionCost(region.USEast1, 2048, 2*d) - p.LambdaRequestUSD
		return math.Abs(two-2*one) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	if s := DefaultBook().String(); s == "" {
		t.Error("empty summary")
	}
}
