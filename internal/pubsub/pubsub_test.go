package pubsub

import (
	"errors"
	"testing"
	"time"

	"caribou/internal/simclock"
)

var t0 = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

func newBroker(cfg Config) (*simclock.Scheduler, *Broker) {
	sched := simclock.New(t0)
	latency := func(string, int) time.Duration { return 10 * time.Millisecond }
	return sched, NewBroker(sched, latency, cfg, simclock.NewRand(1))
}

func TestDeliverToSubscriber(t *testing.T) {
	sched, b := newBroker(Config{})
	var got []string
	b.Subscribe("t", func(m Message) error {
		got = append(got, string(m.Data))
		if m.Attempt != 1 {
			t.Errorf("attempt = %d", m.Attempt)
		}
		return nil
	})
	if err := b.Publish("t", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
	pub, del, drop, inflight := b.Stats()
	if pub != 1 || del != 1 || drop != 0 || inflight != 0 {
		t.Errorf("stats pub=%d del=%d drop=%d inflight=%d", pub, del, drop, inflight)
	}
}

func TestDeliveryRespectsLatency(t *testing.T) {
	sched, b := newBroker(Config{})
	var at time.Time
	b.Subscribe("t", func(Message) error {
		at = sched.Now()
		return nil
	})
	if err := b.PublishAfter("t", nil, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if want := t0.Add(250 * time.Millisecond); !at.Equal(want) {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestRedeliveryOnNack(t *testing.T) {
	sched, b := newBroker(Config{RetryDelay: time.Second})
	attempts := 0
	b.Subscribe("t", func(m Message) error {
		attempts++
		if attempts < 3 {
			return errors.New("nack")
		}
		return nil
	})
	if err := b.Publish("t", nil); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	_, del, drop, _ := b.Stats()
	if del != 1 || drop != 0 {
		t.Errorf("del=%d drop=%d", del, drop)
	}
}

func TestDropAfterMaxAttempts(t *testing.T) {
	sched, b := newBroker(Config{MaxAttempts: 3, RetryDelay: time.Second})
	attempts := 0
	b.Subscribe("t", func(Message) error {
		attempts++
		return errors.New("always fails")
	})
	var dropped []Message
	b.OnDrop(func(m Message) { dropped = append(dropped, m) })
	if err := b.Publish("t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if len(dropped) != 1 || dropped[0].Topic != "t" {
		t.Errorf("dropped = %v", dropped)
	}
	_, del, drop, _ := b.Stats()
	if del != 0 || drop != 1 {
		t.Errorf("del=%d drop=%d", del, drop)
	}
}

func TestMultipleOnDropCallbacks(t *testing.T) {
	sched, b := newBroker(Config{MaxAttempts: 1})
	calls := 0
	b.OnDrop(func(Message) { calls++ })
	b.OnDrop(func(Message) { calls++ })
	if err := b.Publish("nobody", nil); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if calls != 2 {
		t.Errorf("drop callbacks = %d, want 2", calls)
	}
}

func TestSubscriberAppearingBeforeDelivery(t *testing.T) {
	// Deployment racing traffic: a publish before Subscribe still
	// delivers if the subscriber exists at (re)delivery time.
	sched, b := newBroker(Config{RetryDelay: time.Second})
	if err := b.Publish("late", []byte("x")); err != nil {
		t.Fatal(err)
	}
	delivered := false
	sched.After(500*time.Millisecond, func() {
		b.Subscribe("late", func(Message) error {
			delivered = true
			return nil
		})
	})
	sched.Run()
	if !delivered {
		t.Error("message not delivered to late subscriber")
	}
}

func TestResubscribeReplacesHandler(t *testing.T) {
	sched, b := newBroker(Config{})
	first, second := 0, 0
	b.Subscribe("t", func(Message) error { first++; return nil })
	b.Subscribe("t", func(Message) error { second++; return nil })
	if err := b.Publish("t", nil); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if first != 0 || second != 1 {
		t.Errorf("first=%d second=%d", first, second)
	}
	b.Unsubscribe("t")
	if b.HasSubscriber("t") {
		t.Error("unsubscribe failed")
	}
	b.Subscribe("t", nil)
	if b.HasSubscriber("t") {
		t.Error("nil handler should unsubscribe")
	}
}

func TestDuplicateInjection(t *testing.T) {
	sched := simclock.New(t0)
	b := NewBroker(sched, nil, Config{DuplicateProb: 1.0}, simclock.NewRand(1))
	got := 0
	b.Subscribe("t", func(Message) error { got++; return nil })
	if err := b.Publish("t", nil); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 2 {
		t.Errorf("deliveries = %d, want 2 (duplicate injected)", got)
	}
}

func TestEmptyTopicRejected(t *testing.T) {
	_, b := newBroker(Config{})
	if err := b.Publish("", nil); err == nil {
		t.Error("want error for empty topic")
	}
	if err := b.PublishAfter("", nil, 0); err == nil {
		t.Error("want error for empty topic")
	}
}

func TestPayloadIsolation(t *testing.T) {
	sched, b := newBroker(Config{})
	data := []byte("orig")
	var seen string
	b.Subscribe("t", func(m Message) error {
		seen = string(m.Data)
		return nil
	})
	if err := b.Publish("t", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // mutate after publish
	sched.Run()
	if seen != "orig" {
		t.Errorf("payload aliased: %q", seen)
	}
}

func TestBackoffDoubling(t *testing.T) {
	sched, b := newBroker(Config{MaxAttempts: 4, RetryDelay: time.Second})
	var times []time.Time
	b.Subscribe("t", func(Message) error {
		times = append(times, sched.Now())
		return errors.New("nack")
	})
	if err := b.PublishAfter("t", nil, 0); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(times) != 4 {
		t.Fatalf("attempts = %d", len(times))
	}
	// Gaps: 1s, 2s, 4s.
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second} {
		if gap := times[i+1].Sub(times[i]); gap != want {
			t.Errorf("gap %d = %v, want %v", i, gap, want)
		}
	}
}
