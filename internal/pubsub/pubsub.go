// Package pubsub provides the publisher/subscriber messaging substrate
// Caribou uses as its geospatial offloading glue (the paper uses AWS SNS;
// Azure Service Bus and Google Pub/Sub are equivalents). Topics are
// per-function-per-region; delivery is at-least-once with subscriber
// acknowledgment and automatic redelivery, matching §6.2.
//
// The broker runs on the discrete-event scheduler: publishing schedules a
// delivery event after a caller-supplied latency, so messaging delay is
// part of simulated time.
package pubsub

import (
	"fmt"
	"time"

	"caribou/internal/simclock"
)

// Message is one published message.
type Message struct {
	Topic   string
	Data    []byte
	Attempt int // 1 for the first delivery
}

// Handler consumes a delivered message. Returning a non-nil error nacks
// the message and triggers redelivery until MaxAttempts is reached.
type Handler func(msg Message) error

// LatencyFunc returns the delivery latency for a message of the given
// payload size published to topic. The platform wires this to the network
// model using the publisher's and subscriber's regions.
type LatencyFunc func(topic string, size int) time.Duration

// Config tunes delivery behaviour.
type Config struct {
	MaxAttempts int           // total delivery attempts before drop (default 5)
	RetryDelay  time.Duration // base redelivery backoff (default 1s, doubled per attempt)
	// DuplicateProb injects duplicate deliveries with this probability
	// to exercise at-least-once semantics in tests. Default 0.
	DuplicateProb float64
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = time.Second
	}
	return c
}

// Broker routes messages from publishers to topic subscribers on virtual
// time. Broker is not safe for concurrent use; it belongs to the
// single-threaded simulation like the scheduler itself.
type Broker struct {
	sched     *simclock.Scheduler
	latency   LatencyFunc
	cfg       Config
	rng       *simclock.Rand
	subs      map[string]Handler
	published uint64
	delivered uint64
	dropped   uint64
	inflight  int
	onDrop    []func(Message)
}

// NewBroker returns a broker on the given scheduler. latency may be nil,
// in which case delivery is immediate (zero virtual delay).
func NewBroker(sched *simclock.Scheduler, latency LatencyFunc, cfg Config, rng *simclock.Rand) *Broker {
	if latency == nil {
		latency = func(string, int) time.Duration { return 0 }
	}
	if rng == nil {
		rng = simclock.NewRand(1)
	}
	return &Broker{
		sched:   sched,
		latency: latency,
		cfg:     cfg.withDefaults(),
		rng:     rng,
		subs:    make(map[string]Handler),
	}
}

// Subscribe registers the single subscriber for topic, mirroring how each
// Caribou function deployment subscribes to exactly one topic in its
// region. Re-subscribing replaces the handler (re-deployment).
func (b *Broker) Subscribe(topic string, h Handler) {
	if h == nil {
		delete(b.subs, topic)
		return
	}
	b.subs[topic] = h
}

// Unsubscribe removes the subscriber for topic.
func (b *Broker) Unsubscribe(topic string) { delete(b.subs, topic) }

// HasSubscriber reports whether topic has a live subscriber.
func (b *Broker) HasSubscriber(topic string) bool {
	_, ok := b.subs[topic]
	return ok
}

// OnDrop registers a callback invoked when a message exhausts its
// delivery attempts. The executor uses this to surface lost invocations.
// Multiple callbacks may be registered; all run on every drop.
func (b *Broker) OnDrop(fn func(Message)) { b.onDrop = append(b.onDrop, fn) }

// Publish schedules delivery of data to topic after the configured
// latency. Publishing to a topic with no subscriber is not an immediate
// error: the subscriber may appear before delivery (deployment racing
// traffic); if none exists at delivery time the attempt counts and the
// message retries, matching pub/sub redelivery behaviour.
func (b *Broker) Publish(topic string, data []byte) error {
	if topic == "" {
		return fmt.Errorf("pubsub: empty topic")
	}
	b.published++
	msg := Message{Topic: topic, Data: append([]byte(nil), data...), Attempt: 0}
	b.scheduleDelivery(msg, b.latency(topic, len(data)))
	if b.cfg.DuplicateProb > 0 && b.rng.Bool(b.cfg.DuplicateProb) {
		dup := Message{Topic: topic, Data: append([]byte(nil), msg.Data...), Attempt: 0}
		b.scheduleDelivery(dup, b.latency(topic, len(data))+b.cfg.RetryDelay)
	}
	return nil
}

// PublishAfter is Publish with an explicit delivery latency, used when the
// caller has already computed network time from the publisher's region.
func (b *Broker) PublishAfter(topic string, data []byte, latency time.Duration) error {
	if topic == "" {
		return fmt.Errorf("pubsub: empty topic")
	}
	b.published++
	msg := Message{Topic: topic, Data: append([]byte(nil), data...), Attempt: 0}
	b.scheduleDelivery(msg, latency)
	if b.cfg.DuplicateProb > 0 && b.rng.Bool(b.cfg.DuplicateProb) {
		dup := Message{Topic: topic, Data: append([]byte(nil), msg.Data...), Attempt: 0}
		b.scheduleDelivery(dup, latency+b.cfg.RetryDelay)
	}
	return nil
}

func (b *Broker) scheduleDelivery(msg Message, after time.Duration) {
	b.inflight++
	b.sched.After(after, func() {
		b.inflight--
		msg.Attempt++
		h, ok := b.subs[msg.Topic]
		var err error
		if !ok {
			err = fmt.Errorf("pubsub: no subscriber for %s", msg.Topic)
		} else {
			err = h(msg)
		}
		if err == nil {
			b.delivered++
			return
		}
		if msg.Attempt >= b.cfg.MaxAttempts {
			b.dropped++
			for _, fn := range b.onDrop {
				fn(msg)
			}
			return
		}
		backoff := b.cfg.RetryDelay << uint(msg.Attempt-1)
		b.scheduleDelivery(msg, backoff)
	})
}

// Stats reports cumulative publish/deliver/drop counts and in-flight
// deliveries.
func (b *Broker) Stats() (published, delivered, dropped uint64, inflight int) {
	return b.published, b.delivered, b.dropped, b.inflight
}
