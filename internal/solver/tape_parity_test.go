package solver

import (
	"testing"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/montecarlo"
)

// diamondInputs builds s → {fast, slow} → join: the join is a
// synchronization node, so this workload exercises staged-payload edges
// and sync waits through the solver, unlike the linear chain. 4 stages ×
// 4 regions = 256 plans keeps every hour on the exhaustive path.
func diamondInputs(t *testing.T) *fakeInputs {
	t.Helper()
	d, err := dag.NewBuilder("diamond").
		AddNode(dag.Node{ID: "s"}).
		AddNode(dag.Node{ID: "fast"}).
		AddNode(dag.Node{ID: "slow"}).
		AddNode(dag.Node{ID: "join"}).
		AddEdge("s", "fast").
		AddEdge("s", "slow").
		AddEdge("fast", "join").
		AddEdge("slow", "join").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return &fakeInputs{
		d:         d,
		cat:       fourRegionCat(t),
		durations: map[dag.NodeID]float64{"s": 1, "fast": 1, "slow": 4, "join": 1},
		bytes: map[[2]dag.NodeID]float64{
			{"s", "fast"}:    1e5,
			{"s", "slow"}:    1e6,
			{"fast", "join"}: 1e4,
			{"slow", "join"}: 2e6,
		},
		intensity: defaultIntensity(),
	}
}

// TestSolveTapedMatchesUntapedReference is the solver-level parity gate
// for the sample tapes: for every priority and for both workload shapes
// (HBSS-path chain, exhaustive-path diamond with a sync join), a solve
// replaying compiled tapes with 8 workers must produce exactly the plans
// and bit-identical estimates of a serial solve on the reference
// draw-per-sample path.
func TestSolveTapedMatchesUntapedReference(t *testing.T) {
	workloads := []struct {
		name string
		in   *fakeInputs
	}{
		{"chain6", chainInputs(t, 6)},
		{"diamond", diamondInputs(t)},
	}
	solve := func(t *testing.T, in *fakeInputs, p Priority, workers int, untaped bool) (dag.HourlyPlans, []Result) {
		t.Helper()
		s, err := New(Config{
			Inputs:           in,
			Estimator:        montecarlo.New(in, carbon.BestCase(), 42),
			Objective:        Objective{Priority: p, Tolerances: Tolerances{Latency: Tol(50)}},
			Seed:             42,
			Workers:          workers,
			UntapedEstimates: untaped,
		})
		if err != nil {
			t.Fatal(err)
		}
		plans, results, err := s.SolveHourly(t0, t0)
		if err != nil {
			t.Fatal(err)
		}
		return plans, results
	}
	for _, w := range workloads {
		for _, p := range []Priority{PriorityCarbon, PriorityCost, PriorityLatency} {
			t.Run(w.name+"/"+p.String(), func(t *testing.T) {
				tapedPlans, tapedRes := solve(t, w.in, p, 8, false)
				refPlans, refRes := solve(t, w.in, p, 1, true)
				assertIdenticalSolves(t, tapedPlans, refPlans, tapedRes, refRes)
			})
		}
	}
}
