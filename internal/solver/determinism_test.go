package solver

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/montecarlo"
	"caribou/internal/region"
)

// solveWith runs a full 24-hour solve over the 6-stage chain (4^6 = 4096
// plans, so every hour takes the HBSS path) with the given worker count.
func solveWith(t *testing.T, workers int) (dag.HourlyPlans, []Result) {
	t.Helper()
	in := chainInputs(t, 6)
	s, err := New(Config{
		Inputs:    in,
		Estimator: montecarlo.New(in, carbon.BestCase(), 42),
		Objective: Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(50)}},
		Seed:      42,
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	plans, results, err := s.SolveHourly(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	return plans, results
}

func assertIdenticalSolves(t *testing.T, aPlans, bPlans dag.HourlyPlans, aRes, bRes []Result) {
	t.Helper()
	for h := 0; h < 24; h++ {
		if !aPlans[h].Equal(bPlans[h]) {
			t.Errorf("hour %d plans diverge: %v vs %v", h, aPlans[h], bPlans[h])
		}
		if *aRes[h].Estimate != *bRes[h].Estimate {
			t.Errorf("hour %d estimates diverge: %+v vs %+v", h, aRes[h].Estimate, bRes[h].Estimate)
		}
	}
}

// TestSolveHourlyDeterministicAcrossWorkerCounts is the central guarantee
// of the parallel search: a serial solve (Workers=1) and a heavily
// fanned-out solve (Workers=8) of the same seed produce byte-identical
// plans and estimates for all 24 hours.
func TestSolveHourlyDeterministicAcrossWorkerCounts(t *testing.T) {
	serialPlans, serialRes := solveWith(t, 1)
	parallelPlans, parallelRes := solveWith(t, 8)
	assertIdenticalSolves(t, serialPlans, parallelPlans, serialRes, parallelRes)
}

// TestSolveHourlyDeterministicAcrossGOMAXPROCS re-runs the parallel solve
// under GOMAXPROCS=1 and GOMAXPROCS=8: scheduling differences must not
// leak into results.
func TestSolveHourlyDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	onePlans, oneRes := solveWith(t, 8)
	runtime.GOMAXPROCS(8)
	eightPlans, eightRes := solveWith(t, 8)
	runtime.GOMAXPROCS(prev)
	assertIdenticalSolves(t, onePlans, eightPlans, oneRes, eightRes)
}

// TestSolveDeterministicAcrossEvalModes is the PR-wide bit-identity grid:
// worker counts 1 and 8 crossed with every evaluation mode — batched SoA
// sweeps with exact pruning (the default), per-plan evaluation (nobatch),
// delta replay off (nodelta), the array-of-structs tape layout (nosoa),
// and the untaped reference estimator — must all produce exactly the same
// 24 hourly plans and bit-identical estimates. Each mode is defined as a
// pure reorganization of the reference arithmetic (batching shares column
// loads, pruning only abandons candidates a bound proves rejected), and
// this test is the contract.
func TestSolveDeterministicAcrossEvalModes(t *testing.T) {
	in := chainInputs(t, 6)
	modes := []struct {
		name  string
		apply func(*Config)
	}{
		{"batch", func(*Config) {}},
		{"nobatch", func(c *Config) { c.NoBatchEval = true }},
		{"nodelta", func(c *Config) { c.NoDeltaEval = true }},
		{"nosoa", func(c *Config) { c.NoSoATape = true }},
		{"untaped", func(c *Config) { c.UntapedEstimates = true }},
	}
	solve := func(workers int, apply func(*Config)) (dag.HourlyPlans, []Result) {
		cfg := Config{
			Inputs:    in,
			Estimator: montecarlo.New(in, carbon.BestCase(), 42),
			Objective: Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(50)}},
			Seed:      42,
			Workers:   workers,
		}
		apply(&cfg)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plans, results, err := s.SolveHourly(t0, t0)
		if err != nil {
			t.Fatal(err)
		}
		return plans, results
	}
	refPlans, refRes := solve(1, modes[0].apply)
	for _, workers := range []int{1, 8} {
		for _, m := range modes {
			if workers == 1 && m.name == "batch" {
				continue // the reference itself
			}
			plans, res := solve(workers, m.apply)
			t.Run(fmt.Sprintf("workers=%d_mode=%s", workers, m.name), func(t *testing.T) {
				assertIdenticalSolves(t, refPlans, plans, refRes, res)
			})
		}
	}
}

// TestParallelSolveOneMatchesSerial covers the single-instant entry point
// (exhaustive path: 4^2 = 16 plans) and, with 6 stages, the HBSS path.
func TestParallelSolveOneMatchesSerial(t *testing.T) {
	for _, n := range []int{2, 6} {
		in := chainInputs(t, n)
		var results [2]Result
		for i, workers := range []int{1, 8} {
			s, err := New(Config{
				Inputs:    in,
				Estimator: montecarlo.New(in, carbon.BestCase(), 7),
				Objective: Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(50)}},
				Seed:      7,
				Workers:   workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			results[i], err = s.SolveOne(t0, t0)
			if err != nil {
				t.Fatal(err)
			}
		}
		if !results[0].Plan.Equal(results[1].Plan) {
			t.Errorf("n=%d: serial plan %v != parallel plan %v", n, results[0].Plan, results[1].Plan)
		}
		if *results[0].Estimate != *results[1].Estimate {
			t.Errorf("n=%d: estimates diverge", n)
		}
	}
}

// TestParallelSolveRaceClean exists to put the fan-out — concurrent hour
// coordinators, the shared memo, and the evaluation semaphore — under the
// race detector (`make verify` runs this package with -race).
func TestParallelSolveRaceClean(t *testing.T) {
	in := chainInputs(t, 5)
	s, err := New(Config{
		Inputs:    in,
		Estimator: montecarlo.New(in, carbon.BestCase(), 3),
		Objective: Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(50)}},
		Seed:      3,
		Workers:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SolveHourly(t0, t0); err != nil {
		t.Fatal(err)
	}
}

// TestSearchSpaceExactAndSaturating checks the overflow-safe |R|^|N|
// computation: 6^20 = 3 656 158 440 062 976 must come out exactly, and a
// 25-stage × 6-region space (6^25 > 2^63) must saturate at MaxInt64
// rather than wrap or round.
func TestSearchSpaceExactAndSaturating(t *testing.T) {
	build := func(nodes int) *Solver {
		regions := make([]region.ID, 6)
		for i := range regions {
			regions[i] = region.ID(rune('a' + i))
		}
		s := &Solver{eligible: map[dag.NodeID][]region.ID{}}
		for i := 0; i < nodes; i++ {
			id := dag.NodeID(rune('a' + i%26))
			id = dag.NodeID(string(id) + string(rune('0'+i/26)))
			s.order = append(s.order, id)
			s.eligible[id] = regions
		}
		return s
	}
	if got := build(20).searchSpace(); got != 3656158440062976 {
		t.Errorf("6^20 = %d, want 3656158440062976", got)
	}
	if got := build(25).searchSpace(); got != math.MaxInt64 {
		t.Errorf("6^25 should saturate at MaxInt64, got %d", got)
	}
	empty := &Solver{order: []dag.NodeID{"x"}, eligible: map[dag.NodeID][]region.ID{"x": nil}}
	if got := empty.searchSpace(); got != 0 {
		t.Errorf("empty eligibility should give 0, got %d", got)
	}
}
