package solver

import (
	"testing"
	"testing/quick"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/montecarlo"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/stats"
)

var t0 = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

// fakeInputs mirrors the montecarlo test double: deterministic durations
// and per-region intensities so solver decisions are fully predictable.
type fakeInputs struct {
	d         *dag.DAG
	cat       *region.Catalogue
	durations map[dag.NodeID]float64
	bytes     map[[2]dag.NodeID]float64
	intensity map[region.ID]float64
}

func (f *fakeInputs) DAG() *dag.DAG                { return f.d }
func (f *fakeInputs) Home() region.ID              { return region.USEast1 }
func (f *fakeInputs) Catalogue() *region.Catalogue { return f.cat }

func constDist(v float64) *stats.Distribution {
	d := stats.NewDistribution(4)
	d.Add(v)
	return d
}

func (f *fakeInputs) ExecDuration(n dag.NodeID, _ region.ID) (*stats.Distribution, error) {
	return constDist(f.durations[n]), nil
}
func (f *fakeInputs) CPUUtil(dag.NodeID) float64      { return 0.8 }
func (f *fakeInputs) MemoryMB(dag.NodeID) float64     { return 1769 }
func (f *fakeInputs) EntryBytes() *stats.Distribution { return constDist(1e3) }
func (f *fakeInputs) EdgeBytes(from, to dag.NodeID) *stats.Distribution {
	if b, ok := f.bytes[[2]dag.NodeID{from, to}]; ok {
		return constDist(b)
	}
	return nil
}
func (f *fakeInputs) OutputBytes(dag.NodeID) *stats.Distribution { return nil }
func (f *fakeInputs) EdgeProbability(dag.Edge) float64           { return 1 }
func (f *fakeInputs) TransferSeconds(a, b region.ID, bytes float64) float64 {
	if a == b {
		return 0.001
	}
	return 0.03 + bytes/80e6
}
func (f *fakeInputs) MessageOverheadSeconds() float64   { return 0.1 }
func (f *fakeInputs) KVAccessSeconds(region.ID) float64 { return 0.005 }
func (f *fakeInputs) CostBook() *pricing.Book           { return pricing.DefaultBook() }
func (f *fakeInputs) IntensityAt(r region.ID, _, _ time.Time) (float64, error) {
	return f.intensity[r], nil
}

func fourRegionCat(t *testing.T) *region.Catalogue {
	t.Helper()
	cat, err := region.NorthAmerica().Subset(region.EvaluationFour())
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func defaultIntensity() map[region.ID]float64 {
	return map[region.ID]float64{
		region.USEast1:    410,
		region.USWest1:    380,
		region.USWest2:    400,
		region.CACentral1: 35,
	}
}

func chainInputs(t *testing.T, n int) *fakeInputs {
	t.Helper()
	b := dag.NewBuilder("chain")
	durations := map[dag.NodeID]float64{}
	var prev dag.NodeID
	for i := 0; i < n; i++ {
		id := dag.NodeID(string(rune('a' + i)))
		b.AddNode(dag.Node{ID: id})
		durations[id] = 2
		if prev != "" {
			b.AddEdge(prev, id)
		}
		prev = id
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &fakeInputs{
		d:         d,
		cat:       fourRegionCat(t),
		durations: durations,
		bytes:     map[[2]dag.NodeID]float64{},
		intensity: defaultIntensity(),
	}
}

func newSolver(t *testing.T, in montecarlo.Inputs, obj Objective, cons region.Constraint) *Solver {
	t.Helper()
	s, err := New(Config{
		Inputs:     in,
		Estimator:  montecarlo.New(in, carbon.BestCase(), 1),
		Objective:  obj,
		Constraint: cons,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExhaustiveFindsGreenestRegion(t *testing.T) {
	in := chainInputs(t, 2) // 4^2 = 16 plans → exhaustive path
	s := newSolver(t, in, Objective{Priority: PriorityCarbon}, region.Constraint{})
	res, err := s.SolveOne(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	for n, r := range res.Plan {
		if r != region.CACentral1 {
			t.Errorf("stage %s in %s, want ca-central-1 with no tolerances", n, r)
		}
	}
}

func TestHBSSFindsLowCarbonPlan(t *testing.T) {
	in := chainInputs(t, 6) // 4^6 = 4096 → HBSS path
	s := newSolver(t, in, Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(50)}}, region.Constraint{})
	home := dag.NewHomePlan(in.d, region.USEast1)
	homeEst, err := s.est.Estimate(home, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SolveOne(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.CarbonMean >= homeEst.CarbonMean {
		t.Errorf("HBSS did not improve on home: %v vs %v", res.Estimate.CarbonMean, homeEst.CarbonMean)
	}
	// Most stages should land in the greenest region.
	green := 0
	for _, r := range res.Plan {
		if r == region.CACentral1 {
			green++
		}
	}
	if green < 4 {
		t.Errorf("only %d of 6 stages in ca-central-1: %v", green, res.Plan)
	}
}

func TestTightToleranceKeepsHome(t *testing.T) {
	in := chainInputs(t, 2)
	// Zero tolerance: any plan slower than home p95 is rejected; since
	// offloading adds network time, home must win.
	s := newSolver(t, in, Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(0)}}, region.Constraint{})
	res, err := s.SolveOne(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	for n, r := range res.Plan {
		if r != region.USEast1 {
			t.Errorf("stage %s offloaded to %s under zero tolerance", n, r)
		}
	}
}

func TestConstraintsRestrictEligibility(t *testing.T) {
	in := chainInputs(t, 2)
	s := newSolver(t, in, Objective{Priority: PriorityCarbon},
		region.Constraint{AllowedCountries: []string{"US"}})
	res, err := s.SolveOne(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	cat := in.Catalogue()
	for n, rid := range res.Plan {
		r, _ := cat.Get(rid)
		if r.Country != "US" {
			t.Errorf("stage %s assigned to %s despite US-only constraint", n, rid)
		}
	}
	// us-west-1 has the lowest US intensity in the fixture.
	for _, rid := range res.Plan {
		if rid != region.USWest1 {
			t.Errorf("expected us-west-1 as greenest US region, got %s", rid)
		}
	}
}

func TestFunctionLevelPinRespected(t *testing.T) {
	in := chainInputs(t, 2)
	// Pin stage "a" to the home region at the function level.
	d, err := dag.NewBuilder("pinned").
		AddNode(dag.Node{ID: "a", Constraint: region.Constraint{AllowedRegions: []region.ID{region.USEast1}}}).
		AddNode(dag.Node{ID: "b"}).
		AddEdge("a", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	in.d = d
	s := newSolver(t, in, Objective{Priority: PriorityCarbon}, region.Constraint{})
	res, err := s.SolveOne(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan["a"] != region.USEast1 {
		t.Errorf("pinned stage moved to %s", res.Plan["a"])
	}
	if res.Plan["b"] != region.CACentral1 {
		t.Errorf("free stage should offload, got %s", res.Plan["b"])
	}
}

func TestNoEligibleRegionError(t *testing.T) {
	in := chainInputs(t, 2)
	if _, err := New(Config{
		Inputs:     in,
		Estimator:  montecarlo.New(in, carbon.BestCase(), 1),
		Constraint: region.Constraint{AllowedProviders: []string{"azure"}},
	}); err == nil {
		t.Error("want error when nothing is eligible")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("want error for missing dependencies")
	}
}

func TestSolveCoarse(t *testing.T) {
	in := chainInputs(t, 3)
	s := newSolver(t, in, Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(50)}}, region.Constraint{})
	res, err := s.SolveCoarse(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsSingleRegion() {
		t.Errorf("coarse plan uses multiple regions: %v", res.Plan)
	}
	if res.Plan["a"] != region.CACentral1 {
		t.Errorf("coarse plan in %s, want greenest", res.Plan["a"])
	}
}

func TestSolveHourlyProducesAllHours(t *testing.T) {
	in := chainInputs(t, 2)
	s := newSolver(t, in, Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(50)}}, region.Constraint{})
	plans, results, err := s.SolveHourly(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 24 {
		t.Fatalf("results = %d", len(results))
	}
	for h, p := range plans {
		if len(p) != in.d.Len() {
			t.Errorf("hour %d plan covers %d stages", h, len(p))
		}
	}
}

func TestPriorityChangesMetric(t *testing.T) {
	in := chainInputs(t, 2)
	// us-west-1 is the costliest region; with cost priority and a large
	// cost advantage at home-ish regions, the solver must not pick it.
	sCost := newSolver(t, in, Objective{Priority: PriorityCost}, region.Constraint{})
	res, err := sCost.SolveOne(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Plan {
		if r == region.USWest1 {
			t.Errorf("cost priority picked the costliest region")
		}
	}
	// Latency priority keeps everything home (any move adds latency).
	sLat := newSolver(t, in, Objective{Priority: PriorityLatency}, region.Constraint{})
	res, err = sLat.SolveOne(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Plan {
		if r != region.USEast1 {
			t.Errorf("latency priority offloaded to %s", r)
		}
	}
}

func TestMetricSelection(t *testing.T) {
	r := Result{Estimate: &montecarlo.Estimate{CarbonMean: 1, CostMean: 2, LatencyMean: 3}}
	if r.Metric(PriorityCarbon) != 1 || r.Metric(PriorityCost) != 2 || r.Metric(PriorityLatency) != 3 {
		t.Error("metric selection broken")
	}
}

func TestPriorityString(t *testing.T) {
	if PriorityCarbon.String() != "carbon" || PriorityCost.String() != "cost" || PriorityLatency.String() != "latency" {
		t.Error("priority strings wrong")
	}
	if Priority(9).String() == "" {
		t.Error("unknown priority should render")
	}
}

func TestQuickSolvedPlansAlwaysSatisfyConstraints(t *testing.T) {
	in := chainInputs(t, 3)
	cat := in.Catalogue()
	ids := cat.IDs()
	f := func(denyIdx uint8, seed int16) bool {
		deny := ids[int(denyIdx)%len(ids)]
		if deny == region.USEast1 {
			return true // home must stay deployable
		}
		cons := region.Constraint{DisallowedRegions: []region.ID{deny}}
		s, err := New(Config{
			Inputs:     in,
			Estimator:  montecarlo.New(in, carbon.BestCase(), int64(seed)),
			Objective:  Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(50)}},
			Constraint: cons,
			Seed:       int64(seed),
		})
		if err != nil {
			return false
		}
		res, err := s.SolveOne(t0, t0)
		if err != nil {
			return false
		}
		return res.Plan.Validate(in.d, cat, cons) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxIterationsCapsHBSS(t *testing.T) {
	in := chainInputs(t, 6)
	s, err := New(Config{
		Inputs:        in,
		Estimator:     montecarlo.New(in, carbon.BestCase(), 1),
		Objective:     Objective{Priority: PriorityCarbon, Tolerances: Tolerances{Latency: Tol(50)}},
		Seed:          1,
		MaxIterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveOne(t0, t0); err != nil {
		t.Fatal(err)
	}
}

func TestCarbonAndCostTolerances(t *testing.T) {
	in := chainInputs(t, 2)
	// A strict carbon ceiling at the home level can never reject the
	// home plan itself, and any accepted plan must respect it.
	s := newSolver(t, in, Objective{
		Priority:   PriorityLatency,
		Tolerances: Tolerances{Carbon: Tol(0), Cost: Tol(0)},
	}, region.Constraint{})
	res, err := s.SolveOne(t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	home := dag.NewHomePlan(in.d, region.USEast1)
	homeEst, err := s.est.Estimate(home, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.CarbonP95 > homeEst.CarbonP95*1.0001 {
		t.Errorf("carbon tolerance violated: %v > %v", res.Estimate.CarbonP95, homeEst.CarbonP95)
	}
	if res.Estimate.CostP95 > homeEst.CostP95*1.0001 {
		t.Errorf("cost tolerance violated: %v > %v", res.Estimate.CostP95, homeEst.CostP95)
	}
}
