package solver

import (
	"math"
	"strconv"

	"caribou/internal/simclock"
)

// Heuristic-Biased Stochastic Sampling (Alg. 1). Hyper-parameters follow
// the paper's empirically determined values: α = |N|·|R|·6 iterations,
// bias β = 0.2, initial temperature γ = 1.0 cooled by 0.99 per accepted
// move.
const (
	alphaFactor = 6
	biasBeta    = 0.2
	gammaInit   = 1.0
	gammaCool   = 0.99
)

// hbssBatch is the number of speculative HBSS iterations generated per
// round. All proposals of a round derive from the round-start incumbent
// and evaluate concurrently; acceptance then replays sequentially in
// iteration order. The constant is deliberately independent of the worker
// count so the search trajectory is identical at any parallelism.
const hbssBatch = 16

// solveHBSS runs the batched, deterministic variant of Alg. 1 from the
// home deployment. Iteration i draws all of its randomness — the
// perturbation and the pre-drawn acceptance uniform — from an independent
// stream DeriveRand(seed, "solver/<at>/<i>"), so a proposal depends only
// on (seed, hour, iteration, incumbent) and never on which goroutine
// evaluated it.
func (c *search) solveHBSS(h int, home denseResult) (denseResult, error) {
	s := c.s
	regionsPerNode := 0
	for _, e := range c.elig {
		if len(e) > regionsPerNode {
			regionsPerNode = len(e)
		}
	}
	alpha := len(c.elig) * regionsPerNode * alphaFactor
	if s.maxIter > 0 && alpha > s.maxIter {
		alpha = s.maxIter
	}

	ranked := c.rankedEligible(h)
	atUnix := c.snap.HourTime(h).Unix()

	// Stream labels are "solver/<at>/<i>". Building them with
	// strconv.AppendInt into a reused buffer keeps the bytes — and hence
	// every derived seed — identical to the former fmt.Sprintf while
	// dropping the per-iteration format-parsing cost.
	labelPrefix := "solver/" + strconv.FormatInt(atUnix, 10) + "/"
	labelBuf := make([]byte, 0, len(labelPrefix)+20)

	type proposal struct {
		assign  []int
		key     string
		uAccept float64
	}

	gamma := gammaInit
	current := home
	best := home
	seen := map[string]bool{assignKey(home.assign): true}
	explored := int64(1)

	for iter := 0; iter < alpha; {
		end := iter + hbssBatch
		if end > alpha {
			end = alpha
		}
		props := make([]proposal, 0, end-iter)
		assigns := make([][]int, 0, end-iter)
		for i := iter; i < end; i++ {
			labelBuf = append(labelBuf[:0], labelPrefix...)
			labelBuf = strconv.AppendInt(labelBuf, int64(i), 10)
			rng := simclock.DeriveRand(s.seed, string(labelBuf))
			nd := c.propose(current.assign, ranked, rng)
			props = append(props, proposal{nd, assignKey(nd), rng.Float64()})
			assigns = append(assigns, nd)
		}
		iter = end

		// Previously seen plans are already memoized, so evaluating the
		// whole round costs only its fresh plans. Neighbor proposals all
		// derive from the round-start incumbent, so its plan anchors the
		// delta evaluations (single-node diffs resume from the anchor's
		// checkpoints; wider perturbations fall back to full replay
		// inside EstimateDelta).
		s.tel.hbssBatches.Inc()
		ests, err := c.evalAllFrom(current.assign, current.est, assigns, h)
		if err != nil {
			return denseResult{}, err
		}

		// Sequential acceptance replay, identical at any worker count.
		for j, p := range props {
			if seen[p.key] {
				continue
			}
			seen[p.key] = true
			explored++
			est := ests[j]
			if s.violates(est, home.est) {
				continue
			}
			cand := denseResult{p.assign, est}
			accept := metricOf(cand.est, s.obj.Priority) < metricOf(current.est, s.obj.Priority) ||
				acceptWorse(p.uAccept, gamma, current, cand, s.obj.Priority)
			if accept {
				current = cand
				gamma *= gammaCool
				if metricOf(cand.est, s.obj.Priority) < metricOf(best.est, s.obj.Priority) {
					best = cand
				}
			}
			if explored >= c.space {
				return best, nil // complete exploration
			}
		}
	}
	return best, nil
}

// propose perturbs the incumbent: 1 + Geometric(1/2) stages (capped at
// |N|) are reassigned, each drawn from the hour's intensity ranking with
// geometric bias β^rank, so low-carbon regions are proposed most often
// but the whole space stays reachable.
func (c *search) propose(cur []int, ranked [][]int, rng *simclock.Rand) []int {
	nd := append([]int(nil), cur...)
	k := 1
	for k < len(nd) && rng.Bool(0.5) {
		k++
	}
	perm := rng.Perm(len(nd))
	for _, idx := range perm[:k] {
		nd[idx] = pickBiased(ranked[idx], rng)
	}
	return nd
}

// pickBiased selects from a ranked list with geometric weights β^rank.
func pickBiased(ranked []int, rng *simclock.Rand) int {
	if len(ranked) == 1 {
		return ranked[0]
	}
	total := 0.0
	w := 1.0
	for range ranked {
		total += w
		w *= biasBeta
	}
	u := rng.Float64() * total
	w = 1.0
	for _, r := range ranked {
		if u < w {
			return r
		}
		u -= w
		w *= biasBeta
	}
	return ranked[len(ranked)-1]
}

// acceptWorse is the stochastic acceptance of Alg. 1 (MUT): accept a
// non-improving deployment when the iteration's pre-drawn uniform falls
// below exp(-Δ/γ), where Δ is the relative metric regression. Cooling γ
// makes the search increasingly greedy.
func acceptWorse(u, gamma float64, cd, nd denseResult, p Priority) bool {
	denom := metricOf(cd.est, p)
	if denom <= 0 {
		denom = 1e-12
	}
	delta := math.Abs(metricOf(cd.est, p)-metricOf(nd.est, p)) / denom
	return u < math.Exp(-delta/gamma)
}
