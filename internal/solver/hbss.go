package solver

import (
	"math"
	"strconv"

	"caribou/internal/simclock"
)

// Heuristic-Biased Stochastic Sampling (Alg. 1). Hyper-parameters follow
// the paper's empirically determined values: α = |N|·|R|·6 iterations,
// bias β = 0.2, initial temperature γ = 1.0 cooled by 0.99 per accepted
// move.
const (
	alphaFactor = 6
	biasBeta    = 0.2
	gammaInit   = 1.0
	gammaCool   = 0.99
)

// hbssBatch is the number of speculative HBSS iterations generated per
// round. All proposals of a round derive from the round-start incumbent
// and evaluate concurrently; acceptance then replays sequentially in
// iteration order. The constant is deliberately independent of the worker
// count so the search trajectory is identical at any parallelism.
const hbssBatch = 16

// pruneMargin is the relative slack added to every prune threshold. The
// bound replay itself is float-exact (bounds.go), but the prefix-sum
// floors are accumulated in a different association than the lane's own
// running sum, and inverting acceptWorse's exp into a metric cutoff
// crosses exp/ln once; both slacks are O(n·ε) ≈ 1e-13 relative, absorbed
// with four orders of magnitude to spare. The margin only ever keeps a
// candidate alive longer — never prunes one the reference would accept.
const pruneMargin = 1e-9

// clampDenom mirrors acceptWorse's denominator guard: the relative
// regression divides by the incumbent metric, floored at 1e-12 for
// non-positive metrics.
func clampDenom(m float64) float64 {
	if m <= 0 {
		return 1e-12
	}
	return m
}

// pruneThreshold inverts the acceptance rule of one proposal into a
// metric cutoff: with incumbent metric m0, temperature gamma, and the
// proposal's pre-drawn uniform u, acceptWorse accepts a candidate metric
// m iff u < exp(-(m-m0)/(clampDenom(m0)·gamma)), i.e. iff
// m < m0 − clampDenom(m0)·gamma·ln(u); metrics below m0 are accepted by
// the strict improvement test regardless. A candidate whose metric
// provably exceeds the cutoff (plus margin) therefore cannot be accepted
// by this proposal. u ≤ 0 always accepts (exp(·) > 0), so its cutoff is
// +Inf — never pruned.
func pruneThreshold(m0, gamma, u float64) float64 {
	if u <= 0 {
		return math.Inf(1)
	}
	t := m0 - clampDenom(m0)*gamma*math.Log(u)
	return t + pruneMargin*math.Abs(t)
}

// solveHBSS runs the batched, deterministic variant of Alg. 1 from the
// home deployment. Iteration i draws all of its randomness — the
// perturbation and the pre-drawn acceptance uniform — from an independent
// stream DeriveRand(seed, "solver/<at>/<i>"), so a proposal depends only
// on (seed, hour, iteration, incumbent) and never on which goroutine
// evaluated it.
func (c *search) solveHBSS(h int, home denseResult) (denseResult, error) {
	s := c.s
	regionsPerNode := 0
	for _, e := range c.elig {
		if len(e) > regionsPerNode {
			regionsPerNode = len(e)
		}
	}
	alpha := len(c.elig) * regionsPerNode * alphaFactor
	if s.maxIter > 0 && alpha > s.maxIter {
		alpha = s.maxIter
	}

	ranked := c.rankedEligible(h)
	atUnix := c.snap.HourTime(h).Unix()

	// Stream labels are "solver/<at>/<i>". Building them with
	// strconv.AppendInt into a reused buffer keeps the bytes — and hence
	// every derived seed — identical to the former fmt.Sprintf while
	// dropping the per-iteration format-parsing cost.
	labelPrefix := "solver/" + strconv.FormatInt(atUnix, 10) + "/"
	labelBuf := make([]byte, 0, len(labelPrefix)+20)

	type proposal struct {
		assign  []int
		key     string
		uAccept float64
	}

	gamma := gammaInit
	current := home
	best := home
	seen := map[string]bool{assignKey(home.assign): true}
	explored := int64(1)

	for iter := 0; iter < alpha; {
		end := iter + hbssBatch
		if end > alpha {
			end = alpha
		}
		// m0 is the round-start incumbent metric every prune threshold is
		// derived from; the acceptance loop re-checks its premise before
		// honoring a pruned (nil) estimate.
		m0 := metricOf(current.est, s.obj.Priority)
		props := make([]proposal, 0, end-iter)
		assigns := make([][]int, 0, end-iter)
		thrs := make([]float64, 0, end-iter)
		for i := iter; i < end; i++ {
			labelBuf = append(labelBuf[:0], labelPrefix...)
			labelBuf = strconv.AppendInt(labelBuf, int64(i), 10)
			rng := simclock.AcquireDerived(s.seed, string(labelBuf))
			nd := c.propose(current.assign, ranked, rng)
			u := rng.Float64()
			rng.Release()
			props = append(props, proposal{nd, assignKey(nd), u})
			assigns = append(assigns, nd)
			thrs = append(thrs, pruneThreshold(m0, gamma, u))
		}
		iter = end

		// Previously seen plans are already memoized, so evaluating the
		// whole round costs only its fresh plans. Neighbor proposals all
		// derive from the round-start incumbent, so its plan anchors the
		// delta evaluations (single-node diffs resume from the anchor's
		// checkpoints; wider perturbations fall back to full replay
		// inside EstimateDelta).
		s.tel.hbssBatches.Inc()
		ests, err := c.evalAllPruned(current.assign, current.est, assigns, h, thrs)
		if err != nil {
			return denseResult{}, err
		}

		// Sequential acceptance replay, identical at any worker count.
		for j, p := range props {
			if seen[p.key] {
				continue
			}
			seen[p.key] = true
			explored++
			est := ests[j]
			if est == nil {
				// Pruned: the batch sweep proved the candidate's metric
				// exceeds this proposal's cutoff at round-start state
				// (m0, round-start gamma). The rejection carries over to
				// the live state exactly when the cutoff has not loosened
				// since: gamma only cools (shrinking the cutoff), so it
				// suffices that the incumbent metric has not risen past
				// m0 and that the denominator clamp is monotone across
				// the pair (it is not near 0, where m ≤ 0 clamps to 1e-12
				// but a tiny positive m does not). Otherwise the proof's
				// premise lapsed — evaluate in full (memoized,
				// bit-identical) and run the normal acceptance.
				mNew := metricOf(current.est, s.obj.Priority)
				if mNew <= m0 && clampDenom(mNew) <= clampDenom(m0) {
					continue
				}
				var eerr error
				if est, eerr = c.estimate(p.assign, h); eerr != nil {
					return denseResult{}, eerr
				}
			}
			if s.violates(est, home.est) {
				continue
			}
			cand := denseResult{p.assign, est}
			accept := metricOf(cand.est, s.obj.Priority) < metricOf(current.est, s.obj.Priority) ||
				acceptWorse(p.uAccept, gamma, current, cand, s.obj.Priority)
			if accept {
				current = cand
				gamma *= gammaCool
				if metricOf(cand.est, s.obj.Priority) < metricOf(best.est, s.obj.Priority) {
					best = cand
				}
			}
			if explored >= c.space {
				return best, nil // complete exploration
			}
		}
	}
	return best, nil
}

// propose perturbs the incumbent: 1 + Geometric(1/2) stages (capped at
// |N|) are reassigned, each drawn from the hour's intensity ranking with
// geometric bias β^rank, so low-carbon regions are proposed most often
// but the whole space stays reachable.
func (c *search) propose(cur []int, ranked [][]int, rng *simclock.Rand) []int {
	nd := append([]int(nil), cur...)
	k := 1
	for k < len(nd) && rng.Bool(0.5) {
		k++
	}
	perm := rng.Perm(len(nd))
	for _, idx := range perm[:k] {
		nd[idx] = pickBiased(ranked[idx], rng)
	}
	return nd
}

// pickBiased selects from a ranked list with geometric weights β^rank.
func pickBiased(ranked []int, rng *simclock.Rand) int {
	if len(ranked) == 1 {
		return ranked[0]
	}
	total := 0.0
	w := 1.0
	for range ranked {
		total += w
		w *= biasBeta
	}
	u := rng.Float64() * total
	w = 1.0
	for _, r := range ranked {
		if u < w {
			return r
		}
		u -= w
		w *= biasBeta
	}
	return ranked[len(ranked)-1]
}

// acceptWorse is the stochastic acceptance of Alg. 1 (MUT): accept a
// non-improving deployment when the iteration's pre-drawn uniform falls
// below exp(-Δ/γ), where Δ is the relative metric regression. Cooling γ
// makes the search increasingly greedy.
func acceptWorse(u, gamma float64, cd, nd denseResult, p Priority) bool {
	denom := metricOf(cd.est, p)
	if denom <= 0 {
		denom = 1e-12
	}
	delta := math.Abs(metricOf(cd.est, p)-metricOf(nd.est, p)) / denom
	return u < math.Exp(-delta/gamma)
}
