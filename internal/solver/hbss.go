package solver

import (
	"math"
	"time"

	"caribou/internal/dag"
	"caribou/internal/region"
)

// Heuristic-Biased Stochastic Sampling (Alg. 1). Hyper-parameters follow
// the paper's empirically determined values: α = |N|·|R|·6 iterations,
// bias β = 0.2, initial temperature γ = 1.0 cooled by 0.99 per accepted
// move.
const (
	alphaFactor = 6
	biasBeta    = 0.2
	gammaInit   = 1.0
	gammaCool   = 0.99
)

// solveHBSS runs Alg. 1 from the home deployment.
func (s *Solver) solveHBSS(at, now time.Time, home Result) (Result, error) {
	regionsPerNode := 0
	for _, n := range s.order {
		if len(s.eligible[n]) > regionsPerNode {
			regionsPerNode = len(s.eligible[n])
		}
	}
	alpha := len(s.order) * regionsPerNode * alphaFactor
	if s.maxIter > 0 && alpha > s.maxIter {
		alpha = s.maxIter
	}

	// Rank eligible regions once per solve by the carbon heuristic.
	ranked := make(map[dag.NodeID][]region.ID, len(s.order))
	for _, n := range s.order {
		r, err := s.rankedEligible(n, at, now)
		if err != nil {
			return Result{}, err
		}
		ranked[n] = r
	}

	gamma := gammaInit
	current := home
	best := home
	seen := map[string]bool{home.Plan.String(): true}
	explored := 1

	for i := 0; i < alpha; i++ {
		nd := s.genNewDeploymentWithBias(current.Plan, ranked)
		key := nd.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		explored++
		est, err := s.est.Estimate(nd, at, now)
		if err != nil {
			return Result{}, err
		}
		if s.violates(est, home.Estimate) {
			continue
		}
		cand := Result{nd, est}
		accept := cand.Metric(s.obj.Priority) < current.Metric(s.obj.Priority) ||
			s.mutate(gamma, current, cand)
		if accept {
			current = cand
			gamma *= gammaCool
			if cand.Metric(s.obj.Priority) < best.Metric(s.obj.Priority) {
				best = cand
			}
		}
		if float64(explored) >= s.searchSpace() {
			break // complete exploration
		}
	}
	return best, nil
}

// genNewDeploymentWithBias perturbs the current deployment: it reassigns a
// small random subset of stages, drawing each new region from the
// heuristic ranking with geometric bias β (rank k chosen with weight
// β^k), so low-carbon regions are proposed most often but the whole space
// stays reachable.
func (s *Solver) genNewDeploymentWithBias(cur dag.Plan, ranked map[dag.NodeID][]region.ID) dag.Plan {
	nd := cur.Clone()
	// Number of stages to mutate: 1 + Geometric(1/2), capped at |N|.
	k := 1
	for k < len(s.order) && s.rng.Bool(0.5) {
		k++
	}
	perm := s.rng.Perm(len(s.order))
	for _, idx := range perm[:k] {
		n := s.order[idx]
		nd[n] = s.pickBiased(ranked[n])
	}
	return nd
}

// pickBiased selects from a ranked list with geometric weights β^rank.
func (s *Solver) pickBiased(ranked []region.ID) region.ID {
	if len(ranked) == 1 {
		return ranked[0]
	}
	total := 0.0
	w := 1.0
	for range ranked {
		total += w
		w *= biasBeta
	}
	u := s.rng.Float64() * total
	w = 1.0
	for _, r := range ranked {
		if u < w {
			return r
		}
		u -= w
		w *= biasBeta
	}
	return ranked[len(ranked)-1]
}

// mutate is the stochastic acceptance of Alg. 1 (MUT): accept a
// non-improving deployment with probability exp(-Δ/γ), where Δ is the
// relative metric regression. Cooling γ makes the search increasingly
// greedy.
func (s *Solver) mutate(gamma float64, cd, nd Result) bool {
	denom := cd.Metric(s.obj.Priority)
	if denom <= 0 {
		denom = 1e-12
	}
	delta := math.Abs(cd.Metric(s.obj.Priority)-nd.Metric(s.obj.Priority)) / denom
	return s.rng.Float64() < math.Exp(-delta/gamma)
}
