package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/montecarlo"
	"caribou/internal/region"
	"caribou/internal/stats"
	"caribou/internal/telemetry"
)

// spreadInputs overlays skewed exec durations (sd/mean ≈ 1.6 per draw) on
// a fakeInputs chain. The solver fixtures otherwise use constant
// distributions, which converge at the first batch boundary — the prune
// check at a boundary only runs for lanes that are still live, so without
// spread the exact-pruning machinery would never fire and a pruning
// parity test would be vacuous.
type spreadInputs struct {
	*fakeInputs
}

func (s *spreadInputs) ExecDuration(n dag.NodeID, _ region.ID) (*stats.Distribution, error) {
	base := s.durations[n]
	d := stats.NewDistribution(12)
	for i := 0; i < 9; i++ {
		d.Add(base)
	}
	d.Add(12 * base)
	return d, nil
}

// randomSpreadChain derives a chain workload from a seed: 2–5 stages
// (covering both the exhaustive and HBSS paths), random per-stage
// durations, and random inter-stage payload sizes. The home region draws
// a LOW carbon intensity and the alternatives draw high ones — pruning
// can only prove a candidate hopeless when it is far worse than the
// incumbent, and the incumbent search starts from home, so a dirty home
// (the default fixture) would leave every bound below its threshold.
func randomSpreadChain(t *testing.T, seed int64) *spreadInputs {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(4)
	in := chainInputs(t, n)
	var prev dag.NodeID
	for i := 0; i < n; i++ {
		id := dag.NodeID(string(rune('a' + i)))
		in.durations[id] = 0.5 + 3.5*rng.Float64()
		if prev != "" {
			in.bytes[[2]dag.NodeID{prev, id}] = 1e5 + 5e6*rng.Float64()
		}
		prev = id
	}
	in.intensity = map[region.ID]float64{
		region.USEast1:    20 + 40*rng.Float64(),
		region.USWest1:    300 + 150*rng.Float64(),
		region.USWest2:    300 + 150*rng.Float64(),
		region.CACentral1: 300 + 150*rng.Float64(),
	}
	return &spreadInputs{in}
}

// TestQuickPruningPreservesSolveExactly is the satellite property test of
// the exact-pruning contract: across random workloads, seeds, and
// objective priorities, a solve with batched evaluation and bound-based
// pruning (the default) must select the identical winning plan and a
// byte-identical winner estimate as a solve with batching disabled
// (NoBatchEval), where every candidate is always evaluated to completion.
// The workloads use spread durations so candidates stay unconverged
// across several batch boundaries and pruning genuinely fires (asserted
// via the montecarlo.pruned_candidates counter at the end).
func TestQuickPruningPreservesSolveExactly(t *testing.T) {
	rec := telemetry.Enable(telemetry.Options{})
	t.Cleanup(telemetry.Disable)
	pruned := rec.Counter("montecarlo.pruned_candidates")

	solve := func(in montecarlo.Inputs, seed int64, prio Priority, nobatch bool) (Result, bool) {
		s, err := New(Config{
			Inputs:      in,
			Estimator:   montecarlo.New(in, carbon.BestCase(), seed),
			Objective:   Objective{Priority: prio, Tolerances: Tolerances{Latency: Tol(50)}},
			Seed:        seed,
			NoBatchEval: nobatch,
		})
		if err != nil {
			t.Log(err)
			return Result{}, false
		}
		res, err := s.SolveOne(t0, t0)
		if err != nil {
			t.Log(err)
			return Result{}, false
		}
		return res, true
	}

	f := func(seed int16, prioSel uint8) bool {
		prio := []Priority{PriorityCarbon, PriorityCost, PriorityLatency}[int(prioSel)%3]
		in := randomSpreadChain(t, int64(seed))
		batched, ok := solve(in, int64(seed), prio, false)
		if !ok {
			return false
		}
		plain, ok := solve(in, int64(seed), prio, true)
		if !ok {
			return false
		}
		if !batched.Plan.Equal(plain.Plan) {
			t.Logf("seed %d prio %v: batched plan %v != unbatched %v", seed, prio, batched.Plan, plain.Plan)
			return false
		}
		if *batched.Estimate != *plain.Estimate {
			t.Logf("seed %d prio %v: estimates diverge: %+v vs %+v", seed, prio, batched.Estimate, plain.Estimate)
			return false
		}
		return true
	}
	// The quick source is pinned so the drawn workloads — and hence
	// whether the firing assertion below can be checked — are the same
	// every run; the property itself holds for any seed.
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	if pruned.Value() == 0 {
		t.Error("pruning never fired across the property runs — the parity check was vacuous")
	}
}
