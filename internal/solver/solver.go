// Package solver implements Caribou's Deployment Solver (§5.1): given the
// workflow DAG, compliance constraints, and the Metric Manager's learned
// model, it searches the |R|^|N| space of deployment plans for the one
// optimizing the developer's priority (carbon, cost, or latency) subject
// to QoS tolerances. The primary algorithm is Heuristic-Biased Stochastic
// Sampling (Alg. 1); exhaustive enumeration (for small spaces and as an
// ablation baseline) and coarse single-region selection are also provided.
// A full solve emits 24 plans, one per hour, to track diurnal carbon
// patterns.
package solver

import (
	"fmt"
	"time"

	"caribou/internal/dag"
	"caribou/internal/montecarlo"
	"caribou/internal/region"
	"caribou/internal/simclock"
)

// Priority is the developer's optimization objective (§8).
type Priority int

// Optimization priorities.
const (
	PriorityCarbon Priority = iota
	PriorityCost
	PriorityLatency
)

func (p Priority) String() string {
	switch p {
	case PriorityCarbon:
		return "carbon"
	case PriorityCost:
		return "cost"
	case PriorityLatency:
		return "latency"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// Limit is an optional relative tolerance against the home-region
// baseline, in percent. The zero value means unconstrained.
type Limit struct {
	Set bool
	Pct float64
}

// Tol returns a set limit.
func Tol(pct float64) Limit { return Limit{Set: true, Pct: pct} }

// Tolerances are the workflow-level QoS bounds from the deployment
// manifest (§8): each set limit caps the plan's tail (p95) metric at the
// home deployment's tail metric scaled by (1 + Pct/100).
type Tolerances struct {
	Latency Limit
	Cost    Limit
	Carbon  Limit
}

// Objective couples a priority with tolerances.
type Objective struct {
	Priority   Priority
	Tolerances Tolerances
}

// Config parameterizes a Solver.
type Config struct {
	Inputs     montecarlo.Inputs
	Estimator  *montecarlo.Estimator
	Objective  Objective
	Constraint region.Constraint // workflow-level compliance constraint
	// Regions restricts the candidate set (defaults to the full
	// catalogue).
	Regions []region.ID
	Seed    int64
	// MaxIterations caps HBSS iterations; 0 uses α = |N|·|R|·6
	// (Alg. 1). The paper adjusts α dynamically to fit Lambda's
	// 900-second limit; the cap plays that role here.
	MaxIterations int
}

// Solver searches deployment plans.
type Solver struct {
	in   montecarlo.Inputs
	est  *montecarlo.Estimator
	obj  Objective
	cons region.Constraint
	rng  *simclock.Rand
	// eligible[i] lists candidate regions for node order[i], already
	// filtered by merged workflow- and function-level constraints and
	// ranked later by the carbon heuristic.
	order    []dag.NodeID
	eligible map[dag.NodeID][]region.ID
	maxIter  int
}

// Result is one evaluated plan.
type Result struct {
	Plan     dag.Plan
	Estimate *montecarlo.Estimate
}

// Metric returns the result's value under the priority.
func (r Result) Metric(p Priority) float64 {
	switch p {
	case PriorityCost:
		return r.Estimate.CostMean
	case PriorityLatency:
		return r.Estimate.LatencyMean
	default:
		return r.Estimate.CarbonMean
	}
}

// New builds a solver, validating that every stage has at least one
// eligible region and that the home region satisfies all constraints (the
// fallback must always be deployable).
func New(cfg Config) (*Solver, error) {
	if cfg.Inputs == nil || cfg.Estimator == nil {
		return nil, fmt.Errorf("solver: Inputs and Estimator are required")
	}
	d := cfg.Inputs.DAG()
	cat := cfg.Inputs.Catalogue()
	candidates := cfg.Regions
	if len(candidates) == 0 {
		candidates = cat.IDs()
	}
	s := &Solver{
		in:       cfg.Inputs,
		est:      cfg.Estimator,
		obj:      cfg.Objective,
		cons:     cfg.Constraint,
		rng:      simclock.DeriveRand(cfg.Seed, "solver/"+d.Name()),
		order:    d.Nodes(),
		eligible: make(map[dag.NodeID][]region.ID, d.Len()),
		maxIter:  cfg.MaxIterations,
	}
	for _, n := range s.order {
		node, _ := d.Node(n)
		merged := region.Merge(cfg.Constraint, node.Constraint)
		var elig []region.ID
		for _, id := range candidates {
			r, ok := cat.Get(id)
			if !ok {
				return nil, fmt.Errorf("solver: unknown candidate region %q", id)
			}
			if merged.Permits(r) {
				elig = append(elig, id)
			}
		}
		if len(elig) == 0 {
			return nil, fmt.Errorf("solver: stage %q has no eligible region", n)
		}
		s.eligible[n] = elig
	}
	return s, nil
}

// searchSpace returns |R|^|N| over per-node eligible sets, saturating at
// math.MaxInt64.
func (s *Solver) searchSpace() float64 {
	size := 1.0
	for _, n := range s.order {
		size *= float64(len(s.eligible[n]))
	}
	return size
}

// violates reports whether est breaks any set tolerance against the home
// baseline (tail-case p95 comparison, §7.1).
func (s *Solver) violates(est, home *montecarlo.Estimate) bool {
	t := s.obj.Tolerances
	if t.Latency.Set && est.LatencyP95 > home.LatencyP95*(1+t.Latency.Pct/100) {
		return true
	}
	if t.Cost.Set && est.CostP95 > home.CostP95*(1+t.Cost.Pct/100) {
		return true
	}
	if t.Carbon.Set && est.CarbonP95 > home.CarbonP95*(1+t.Carbon.Pct/100) {
		return true
	}
	return false
}

// SolveOne finds the best plan for one instant using HBSS, or exhaustive
// enumeration when the search space is small enough that enumeration is
// cheaper than sampling.
func (s *Solver) SolveOne(at, now time.Time) (Result, error) {
	home := dag.NewHomePlan(s.in.DAG(), s.in.Home())
	homeEst, err := s.est.Estimate(home, at, now)
	if err != nil {
		return Result{}, err
	}
	if s.searchSpace() <= 256 {
		return s.solveExhaustive(at, now, Result{home, homeEst})
	}
	return s.solveHBSS(at, now, Result{home, homeEst})
}

// SolveHourly emits one plan per hour of the day starting at dayStart
// (§5.1: 24 plans per solve given sufficient carbon budget).
func (s *Solver) SolveHourly(dayStart, now time.Time) (dag.HourlyPlans, []Result, error) {
	var plans dag.HourlyPlans
	results := make([]Result, 24)
	base := dayStart.UTC().Truncate(time.Hour)
	for h := 0; h < 24; h++ {
		at := base.Add(time.Duration(h) * time.Hour)
		res, err := s.SolveOne(at, now)
		if err != nil {
			return plans, nil, fmt.Errorf("solver: hour %d: %w", h, err)
		}
		plans[at.Hour()] = res.Plan
		results[at.Hour()] = res
	}
	return plans, results, nil
}

// SolveCoarse returns the best single-region plan — the O(|R|) baseline
// discussed in §5.1 — still subject to tolerances and constraints. Region
// candidates must be eligible for every stage.
func (s *Solver) SolveCoarse(at, now time.Time) (Result, error) {
	d := s.in.DAG()
	home := dag.NewHomePlan(d, s.in.Home())
	homeEst, err := s.est.Estimate(home, at, now)
	if err != nil {
		return Result{}, err
	}
	best := Result{home, homeEst}
	for _, r := range s.commonEligible() {
		if r == s.in.Home() {
			continue
		}
		plan := dag.NewHomePlan(d, r)
		est, err := s.est.Estimate(plan, at, now)
		if err != nil {
			return Result{}, err
		}
		cand := Result{plan, est}
		if s.violates(est, homeEst) {
			continue
		}
		if cand.Metric(s.obj.Priority) < best.Metric(s.obj.Priority) {
			best = cand
		}
	}
	return best, nil
}

// commonEligible lists regions eligible for every stage.
func (s *Solver) commonEligible() []region.ID {
	counts := map[region.ID]int{}
	for _, n := range s.order {
		for _, r := range s.eligible[n] {
			counts[r]++
		}
	}
	var out []region.ID
	for _, r := range s.eligible[s.order[0]] {
		if counts[r] == len(s.order) {
			out = append(out, r)
		}
	}
	return out
}

// solveExhaustive enumerates the full plan space.
func (s *Solver) solveExhaustive(at, now time.Time, home Result) (Result, error) {
	best := home
	plan := home.Plan.Clone()
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(s.order) {
			est, err := s.est.Estimate(plan, at, now)
			if err != nil {
				return err
			}
			if s.violates(est, home.Estimate) {
				return nil
			}
			cand := Result{plan.Clone(), est}
			if cand.Metric(s.obj.Priority) < best.Metric(s.obj.Priority) {
				best = cand
			}
			return nil
		}
		for _, r := range s.eligible[s.order[i]] {
			plan[s.order[i]] = r
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return Result{}, err
	}
	return best, nil
}

// rankedEligible orders a node's eligible regions by ascending forecast
// intensity at `at` — the greedy heuristic HBSS biases toward.
func (s *Solver) rankedEligible(n dag.NodeID, at, now time.Time) ([]region.ID, error) {
	elig := s.eligible[n]
	type ri struct {
		r region.ID
		v float64
	}
	rs := make([]ri, 0, len(elig))
	for _, r := range elig {
		v, err := s.in.IntensityAt(r, at, now)
		if err != nil {
			return nil, err
		}
		rs = append(rs, ri{r, v})
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].v < rs[j-1].v; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := make([]region.ID, len(rs))
	for i, x := range rs {
		out[i] = x.r
	}
	return out, nil
}
