// Package solver implements Caribou's Deployment Solver (§5.1): given the
// workflow DAG, compliance constraints, and the Metric Manager's learned
// model, it searches the |R|^|N| space of deployment plans for the one
// optimizing the developer's priority (carbon, cost, or latency) subject
// to QoS tolerances. The primary algorithm is Heuristic-Biased Stochastic
// Sampling (Alg. 1); exhaustive enumeration (for small spaces and as an
// ablation baseline) and coarse single-region selection are also provided.
// A full solve emits 24 plans, one per hour, to track diurnal carbon
// patterns.
//
// Each solve first compiles the montecarlo.Inputs into an immutable
// evaluation snapshot (montecarlo.Snapshot) and then searches over dense
// integer assignments: plan estimates become pure functions of
// (assignment, hour), which lets the search memoize them by (plan, hour)
// and fan evaluations — HBSS rounds, exhaustive enumeration, and the 24
// hourly solves — across a bounded worker pool while staying bit-identical
// to the serial search at any GOMAXPROCS.
package solver

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"caribou/internal/dag"
	"caribou/internal/montecarlo"
	"caribou/internal/region"
	"caribou/internal/telemetry"
)

// Priority is the developer's optimization objective (§8).
type Priority int

// Optimization priorities.
const (
	PriorityCarbon Priority = iota
	PriorityCost
	PriorityLatency
)

func (p Priority) String() string {
	switch p {
	case PriorityCarbon:
		return "carbon"
	case PriorityCost:
		return "cost"
	case PriorityLatency:
		return "latency"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// Limit is an optional relative tolerance against the home-region
// baseline, in percent. The zero value means unconstrained.
type Limit struct {
	Set bool
	Pct float64
}

// Tol returns a set limit.
func Tol(pct float64) Limit { return Limit{Set: true, Pct: pct} }

// Tolerances are the workflow-level QoS bounds from the deployment
// manifest (§8): each set limit caps the plan's tail (p95) metric at the
// home deployment's tail metric scaled by (1 + Pct/100).
type Tolerances struct {
	Latency Limit
	Cost    Limit
	Carbon  Limit
}

// Objective couples a priority with tolerances.
type Objective struct {
	Priority   Priority
	Tolerances Tolerances
}

// Config parameterizes a Solver.
type Config struct {
	Inputs     montecarlo.Inputs
	Estimator  *montecarlo.Estimator
	Objective  Objective
	Constraint region.Constraint // workflow-level compliance constraint
	// Regions restricts the candidate set (defaults to the full
	// catalogue).
	Regions []region.ID
	Seed    int64
	// MaxIterations caps HBSS iterations; 0 uses α = |N|·|R|·6
	// (Alg. 1). The paper adjusts α dynamically to fit Lambda's
	// 900-second limit; the cap plays that role here.
	MaxIterations int
	// Workers bounds concurrent plan evaluations: 0 uses
	// runtime.GOMAXPROCS(0), 1 forces a fully serial solve. Results are
	// identical for every value — per-iteration RNG streams and
	// order-independent estimate memoization make the search
	// deterministic at any parallelism.
	Workers int
	// UntapedEstimates routes plan evaluations through the reference
	// draw-per-sample path instead of replaying compiled sample tapes.
	// Results are bit-identical either way (asserted by the tape parity
	// tests); the switch exists for benchmarks and ablations.
	UntapedEstimates bool
	// NoDeltaEval routes HBSS neighbor evaluations through full tape
	// replay instead of delta replay anchored at the incumbent plan.
	// Results are bit-identical either way (asserted by the solver mode
	// grid tests); the switch exists for benchmarks and ablations.
	NoDeltaEval bool
	// NoSoATape keeps sample tapes in the array-of-structs reference
	// layout instead of the structure-of-arrays columns. Bit-identical
	// either way; delta replay requires the column layout, so this also
	// implies full replay for neighbor evaluations.
	NoSoATape bool
	// NoBatchEval evaluates candidate plans one at a time instead of
	// through the batched multi-plan sweep with bound-based pruning
	// (montecarlo.EstimateBatch). Results are bit-identical either way —
	// surviving candidates replay the exact reference arithmetic, and
	// every pruned candidate is one the acceptance rule provably rejects
	// (re-evaluated in full when the proof's premise lapses) — asserted by
	// the solver mode grid and pruning property tests. Batch evaluation
	// requires SoA tapes, so NoSoATape and UntapedEstimates imply it off.
	NoBatchEval bool
}

// EvalModes bundles the evaluation-path escape hatches
// (UntapedEstimates, NoDeltaEval, NoSoATape, NoBatchEval) so
// process-level tooling — caribou-eval's -eval-mode flag — can route
// every solve in a run through a reference path without threading new
// fields through each experiment constructor. All modes are
// bit-identical by construction; see DESIGN.md "SoA tape layout & delta
// replay" and "Batched replay & exact pruning".
type EvalModes struct {
	UntapedEstimates bool
	NoDeltaEval      bool
	NoSoATape        bool
	NoBatchEval      bool
}

// defaultEvalModes is ORed into the Config flags of every Solver built
// afterwards. Written once at process start (before any solver exists),
// read by New; deliberately not synchronized.
var defaultEvalModes EvalModes

// SetDefaultEvalModes selects the evaluation path for all subsequently
// constructed Solvers. Call once at process start, before building any
// environment; per-Config flags still apply on top.
func SetDefaultEvalModes(m EvalModes) { defaultEvalModes = m }

// Solver searches deployment plans.
type Solver struct {
	in   montecarlo.Inputs
	est  *montecarlo.Estimator
	obj  Objective
	cons region.Constraint
	seed int64
	// eligible[i] lists candidate regions for node order[i], already
	// filtered by merged workflow- and function-level constraints and
	// ranked later by the carbon heuristic.
	order    []dag.NodeID
	eligible map[dag.NodeID][]region.ID
	maxIter  int
	workers  int
	untaped  bool
	nodelta  bool
	nosoa    bool
	nobatch  bool

	tel solverTelemetry
}

// solverTelemetry holds instrument handles captured at construction; all
// fields are nil-safe no-ops when telemetry is off. Counters are atomic,
// so the parallel search increments them without extra locking — and they
// never feed back into the search, preserving bit-identical results.
type solverTelemetry struct {
	rec         *telemetry.Recorder
	solves      *telemetry.Counter
	hbssBatches *telemetry.Counter
	estimates   *telemetry.Counter
	memoHits    *telemetry.Counter
}

func newSolverTelemetry() solverTelemetry {
	rec := telemetry.Default()
	return solverTelemetry{
		rec:         rec,
		solves:      rec.Counter("solver.solves"),
		hbssBatches: rec.Counter("solver.hbss_batches"),
		estimates:   rec.Counter("solver.estimates"),
		memoHits:    rec.Counter("solver.memo_hits"),
	}
}

// Result is one evaluated plan.
type Result struct {
	Plan     dag.Plan
	Estimate *montecarlo.Estimate
}

// metricOf returns an estimate's value under the priority.
func metricOf(est *montecarlo.Estimate, p Priority) float64 {
	switch p {
	case PriorityCost:
		return est.CostMean
	case PriorityLatency:
		return est.LatencyMean
	default:
		return est.CarbonMean
	}
}

// Metric returns the result's value under the priority.
func (r Result) Metric(p Priority) float64 { return metricOf(r.Estimate, p) }

// New builds a solver, validating that every stage has at least one
// eligible region and that the home region satisfies all constraints (the
// fallback must always be deployable).
func New(cfg Config) (*Solver, error) {
	if cfg.Inputs == nil || cfg.Estimator == nil {
		return nil, fmt.Errorf("solver: Inputs and Estimator are required")
	}
	d := cfg.Inputs.DAG()
	cat := cfg.Inputs.Catalogue()
	candidates := cfg.Regions
	if len(candidates) == 0 {
		candidates = cat.IDs()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Solver{
		in:       cfg.Inputs,
		est:      cfg.Estimator,
		obj:      cfg.Objective,
		cons:     cfg.Constraint,
		seed:     cfg.Seed,
		order:    d.Nodes(),
		eligible: make(map[dag.NodeID][]region.ID, d.Len()),
		maxIter:  cfg.MaxIterations,
		workers:  workers,
		untaped:  cfg.UntapedEstimates || defaultEvalModes.UntapedEstimates,
		nodelta:  cfg.NoDeltaEval || defaultEvalModes.NoDeltaEval,
		nosoa:    cfg.NoSoATape || defaultEvalModes.NoSoATape,
		nobatch:  cfg.NoBatchEval || defaultEvalModes.NoBatchEval,
		tel:      newSolverTelemetry(),
	}
	for _, n := range s.order {
		node, _ := d.Node(n)
		merged := region.Merge(cfg.Constraint, node.Constraint)
		var elig []region.ID
		for _, id := range candidates {
			r, ok := cat.Get(id)
			if !ok {
				return nil, fmt.Errorf("solver: unknown candidate region %q", id)
			}
			if merged.Permits(r) {
				elig = append(elig, id)
			}
		}
		if len(elig) == 0 {
			return nil, fmt.Errorf("solver: stage %q has no eligible region", n)
		}
		s.eligible[n] = elig
	}
	return s, nil
}

// searchSpace returns |R|^|N| over per-node eligible sets, saturating at
// math.MaxInt64 with overflow-checked integer arithmetic (a float64
// product would silently reach +Inf for very large DAGs and lose exact
// counts long before that).
func (s *Solver) searchSpace() int64 {
	size := int64(1)
	for _, n := range s.order {
		k := int64(len(s.eligible[n]))
		if k == 0 {
			return 0
		}
		if size > math.MaxInt64/k {
			return math.MaxInt64
		}
		size *= k
	}
	return size
}

// violates reports whether est breaks any set tolerance against the home
// baseline (tail-case p95 comparison, §7.1).
func (s *Solver) violates(est, home *montecarlo.Estimate) bool {
	t := s.obj.Tolerances
	if t.Latency.Set && est.LatencyP95 > home.LatencyP95*(1+t.Latency.Pct/100) {
		return true
	}
	if t.Cost.Set && est.CostP95 > home.CostP95*(1+t.Cost.Pct/100) {
		return true
	}
	if t.Carbon.Set && est.CarbonP95 > home.CarbonP95*(1+t.Carbon.Pct/100) {
		return true
	}
	return false
}

// SolveOne finds the best plan for one instant using HBSS, or exhaustive
// enumeration when the search space is small enough that enumeration is
// cheaper than sampling.
func (s *Solver) SolveOne(at, now time.Time) (Result, error) {
	c, err := s.newSearch([]time.Time{at}, now)
	if err != nil {
		return Result{}, err
	}
	return c.solveHour(0)
}

// SolveHourly emits one plan per hour of the day starting at dayStart
// (§5.1: 24 plans per solve given sufficient carbon budget). The 24
// hourly solves share one compiled snapshot and one estimate memo and run
// concurrently up to the configured worker bound.
func (s *Solver) SolveHourly(dayStart, now time.Time) (dag.HourlyPlans, []Result, error) {
	sp := s.tel.rec.StartSpan("solver.solve_hourly",
		telemetry.Int("workers", int64(s.workers)),
		telemetry.Int("stages", int64(len(s.order))))
	defer sp.End()
	s.tel.solves.Inc()
	var plans dag.HourlyPlans
	base := dayStart.UTC().Truncate(time.Hour)
	hours := make([]time.Time, 24)
	for h := range hours {
		hours[h] = base.Add(time.Duration(h) * time.Hour)
	}
	c, err := s.newSearch(hours, now)
	if err != nil {
		return plans, nil, fmt.Errorf("solver: %w", err)
	}
	hourly, err := c.solveAllHours()
	if err != nil {
		return plans, nil, fmt.Errorf("solver: %w", err)
	}
	results := make([]Result, 24)
	for h := 0; h < 24; h++ {
		at := hours[h]
		plans[at.Hour()] = hourly[h].Plan
		results[at.Hour()] = hourly[h]
	}
	return plans, results, nil
}

// SolveCoarse returns the best single-region plan — the O(|R|) baseline
// discussed in §5.1 — still subject to tolerances and constraints. Region
// candidates must be eligible for every stage.
func (s *Solver) SolveCoarse(at, now time.Time) (Result, error) {
	c, err := s.newSearch([]time.Time{at}, now)
	if err != nil {
		return Result{}, err
	}
	homeAssign := c.snap.HomeAssign()
	homeEst, err := c.estimate(homeAssign, 0)
	if err != nil {
		return Result{}, err
	}
	var assigns [][]int
	for _, r := range s.commonEligible() {
		if r == s.in.Home() {
			continue
		}
		idx, ok := c.snap.RegionIndex(r)
		if !ok {
			continue
		}
		a := make([]int, len(s.order))
		for i := range a {
			a[i] = idx
		}
		assigns = append(assigns, a)
	}
	ests, err := c.evalAll(assigns, 0)
	if err != nil {
		return Result{}, err
	}
	best := Result{c.snap.PlanOf(homeAssign), homeEst}
	for i, est := range ests {
		if s.violates(est, homeEst) {
			continue
		}
		if metricOf(est, s.obj.Priority) < best.Metric(s.obj.Priority) {
			best = Result{c.snap.PlanOf(assigns[i]), est}
		}
	}
	return best, nil
}

// commonEligible lists regions eligible for every stage.
func (s *Solver) commonEligible() []region.ID {
	counts := map[region.ID]int{}
	for _, n := range s.order {
		for _, r := range s.eligible[n] {
			counts[r]++
		}
	}
	var out []region.ID
	for _, r := range s.eligible[s.order[0]] {
		if counts[r] == len(s.order) {
			out = append(out, r)
		}
	}
	return out
}
