package solver

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"caribou/internal/montecarlo"
	"caribou/internal/region"
)

// exhaustiveCutoff is the search-space size below which exhaustive
// enumeration is cheaper than sampling.
const exhaustiveCutoff = 256

// evalChunk is how many deduplicated evaluation jobs one batched
// EstimateBatch/EstimateBatchDelta call carries. An HBSS round's fresh
// proposals (≤ hbssBatch) always fit one chunk; larger exhaustive job
// lists split into chunk-grained goroutines so the worker bound still
// applies. Chunk boundaries depend only on the job order, never on
// scheduling, so the pruning decisions inside a chunk are deterministic.
const evalChunk = 16

// search is the per-solve context: the compiled evaluation snapshot,
// dense per-stage eligibility, the (plan, hour) estimate memo shared
// across HBSS, exhaustive enumeration, and all hourly solves, and the
// semaphore bounding concurrent evaluations.
//
// Determinism: a plan estimate is a pure function of (assignment, hour) —
// the Monte Carlo stream is derived from (seed, workflow, hour), never
// from shared state — so a memo hit is indistinguishable from a fresh
// computation and neither scheduling order nor the worker count can
// change any result.
type search struct {
	s     *Solver
	snap  *montecarlo.Snapshot
	elig  [][]int // per dense node index: eligible region indices
	space int64

	// delta routes HBSS neighbor evaluations through
	// montecarlo.EstimateDelta anchored at the round's incumbent plan;
	// disabled by Config.NoDeltaEval and implied off by NoSoATape and
	// UntapedEstimates (delta replay resumes SoA tape checkpoints).
	delta bool
	// batch routes grouped evaluations through the shared-sweep batch
	// replayers with bound-based pruning (montecarlo.EstimateBatch);
	// disabled by Config.NoBatchEval and implied off by NoSoATape and
	// UntapedEstimates (the batch sweep walks SoA columns).
	batch bool

	mu    sync.Mutex
	cache map[memoKey]*montecarlo.Estimate

	sem chan struct{} // bounds concurrent Estimate calls across all hours
}

// memoKey identifies one (plan, hour) evaluation.
type memoKey struct {
	plan string
	hour int
}

// assignKey encodes a dense assignment as a compact map key (two bytes
// per stage), replacing the Plan.String keys — and the dag.Plan cloning
// around them — of the pre-snapshot search.
func assignKey(assign []int) string {
	b := make([]byte, 2*len(assign))
	for i, r := range assign {
		b[2*i] = byte(r)
		b[2*i+1] = byte(r >> 8)
	}
	return string(b)
}

// newSearch compiles the solver's Inputs into a snapshot covering the
// given solve instants. Only the home region and regions eligible for at
// least one stage are interned.
func (s *Solver) newSearch(hours []time.Time, now time.Time) (*search, error) {
	used := map[region.ID]bool{s.in.Home(): true}
	for _, n := range s.order {
		for _, r := range s.eligible[n] {
			used[r] = true
		}
	}
	var ids []region.ID
	for _, id := range s.in.Catalogue().IDs() {
		if used[id] {
			ids = append(ids, id)
		}
	}
	snap, err := s.est.Compile(ids, hours, now)
	if err != nil {
		return nil, err
	}
	// Tapes are per-snapshot, so one lazily compiled tape per hour is
	// shared — read-only after each extension — by every estimate this
	// search performs: HBSS rounds, exhaustive enumeration, the coarse
	// baseline, and all hourly solves.
	snap.SetSoA(!s.nosoa)
	snap.SetTapes(!s.untaped)
	elig := make([][]int, len(s.order))
	for i, n := range s.order {
		for _, rid := range s.eligible[n] {
			idx, ok := snap.RegionIndex(rid)
			if !ok {
				return nil, fmt.Errorf("solver: region %q not interned", rid)
			}
			elig[i] = append(elig[i], idx)
		}
	}
	return &search{
		s:     s,
		snap:  snap,
		elig:  elig,
		space: s.searchSpace(),
		delta: !s.nodelta && !s.nosoa && !s.untaped,
		batch: !s.nobatch && !s.nosoa && !s.untaped,
		cache: make(map[memoKey]*montecarlo.Estimate),
		sem:   make(chan struct{}, s.workers),
	}, nil
}

// estimate evaluates a single assignment at hour h through the memo.
func (c *search) estimate(assign []int, h int) (*montecarlo.Estimate, error) {
	ests, err := c.evalAll([][]int{assign}, h)
	if err != nil {
		return nil, err
	}
	return ests[0], nil
}

// evalAll returns estimates for the assignments at hour h: memo hits are
// returned directly, misses are deduplicated and computed — concurrently
// when more than one worker is configured, bounded by the shared
// semaphore — then memoized. Errors surface in first-assignment order so
// failure behaviour is as deterministic as success.
func (c *search) evalAll(assigns [][]int, h int) ([]*montecarlo.Estimate, error) {
	return c.evalAllFrom(nil, nil, assigns, h)
}

// evalAllFrom is evalAll with an optional evaluation anchor: when delta
// replay is enabled and a base plan (with its estimate) is supplied,
// cache misses are computed via EstimateDelta against it instead of a
// full Estimate. Delta results are bit-identical to full replay (pinned
// by the montecarlo delta parity tests), so memo entries stay
// interchangeable regardless of which path produced them.
func (c *search) evalAllFrom(baseAssign []int, baseEst *montecarlo.Estimate, assigns [][]int, h int) ([]*montecarlo.Estimate, error) {
	return c.evalAllPruned(baseAssign, baseEst, assigns, h, nil)
}

// batchMetric maps the solver priority onto the batch sweep's pruning
// metric — the same mean metricOf reads.
func batchMetric(p Priority) montecarlo.BatchMetric {
	switch p {
	case PriorityCost:
		return montecarlo.BatchCostMean
	case PriorityLatency:
		return montecarlo.BatchLatencyMean
	default:
		return montecarlo.BatchCarbonMean
	}
}

// evalAllPruned is evalAllFrom with per-assignment abandonment
// thresholds (nil thr, or +Inf entries, disable pruning). With batch
// evaluation enabled, deduplicated cache misses are evaluated in
// evalChunk-sized groups through one shared tape sweep each; a returned
// nil estimate means the sweep proved that candidate's priority metric
// exceeds its threshold. Pruned results are never memoized — the proof
// is relative to this call's thresholds — so out[i] stays nil for every
// occurrence of a pruned plan. A duplicated assignment's job carries the
// threshold of its first unmemoized occurrence; that is the only
// occurrence whose estimate the HBSS acceptance loop can reach (later
// duplicates fail its seen check), so the sharing cannot leak a prune
// decision across different thresholds.
func (c *search) evalAllPruned(baseAssign []int, baseEst *montecarlo.Estimate, assigns [][]int, h int, thr []float64) ([]*montecarlo.Estimate, error) {
	out := make([]*montecarlo.Estimate, len(assigns))
	keys := make([]string, len(assigns))
	type job struct {
		assign []int
		key    string
		thr    float64
	}
	var jobs []job
	hits := int64(0)
	pending := map[string]bool{}
	c.mu.Lock()
	for i, a := range assigns {
		k := assignKey(a)
		keys[i] = k
		if est, ok := c.cache[memoKey{k, h}]; ok {
			out[i] = est
			hits++
			continue
		}
		if !pending[k] {
			pending[k] = true
			t := math.Inf(1)
			if thr != nil {
				t = thr[i]
			}
			jobs = append(jobs, job{append([]int(nil), a...), k, t})
		}
	}
	c.mu.Unlock()
	c.s.tel.memoHits.Add(hits)
	c.s.tel.estimates.Add(int64(len(jobs)))
	if len(jobs) == 0 {
		return out, nil
	}

	ests := make([]*montecarlo.Estimate, len(jobs))
	errs := make([]error, len(jobs))
	if c.batch {
		runChunk := func(lo, hi int) {
			as := make([][]int, hi-lo)
			ts := make([]float64, hi-lo)
			for j := lo; j < hi; j++ {
				as[j-lo] = jobs[j].assign
				ts[j-lo] = jobs[j].thr
			}
			prune := &montecarlo.BatchPrune{Metric: batchMetric(c.s.obj.Priority), Threshold: ts}
			var es []*montecarlo.Estimate
			var err error
			if c.delta && baseAssign != nil {
				es, err = c.snap.EstimateBatchDelta(baseEst, baseAssign, as, h, prune)
			} else {
				es, err = c.snap.EstimateBatch(as, h, prune)
			}
			for j := lo; j < hi; j++ {
				if err != nil {
					errs[j] = err
					continue
				}
				ests[j] = es[j-lo]
			}
		}
		if c.s.workers <= 1 {
			runChunk(0, len(jobs))
		} else if len(jobs) <= evalChunk {
			// One chunk, run inline — but under an evaluation slot, so
			// concurrent hour coordinators stay bounded by the worker
			// count now that the coordinator itself sweeps the tape.
			c.sem <- struct{}{}
			runChunk(0, len(jobs))
			<-c.sem
		} else {
			var wg sync.WaitGroup
			for lo := 0; lo < len(jobs); lo += evalChunk {
				hi := lo + evalChunk
				if hi > len(jobs) {
					hi = len(jobs)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					c.sem <- struct{}{}
					runChunk(lo, hi)
					<-c.sem
				}(lo, hi)
			}
			wg.Wait()
		}
	} else {
		eval := func(a []int) (*montecarlo.Estimate, error) {
			if c.delta && baseAssign != nil {
				return c.snap.EstimateDelta(baseEst, baseAssign, a, h)
			}
			return c.snap.Estimate(a, h)
		}
		if c.s.workers <= 1 || len(jobs) == 1 {
			for j := range jobs {
				ests[j], errs[j] = eval(jobs[j].assign)
			}
		} else {
			var wg sync.WaitGroup
			for j := range jobs {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					c.sem <- struct{}{}
					ests[j], errs[j] = eval(jobs[j].assign)
					<-c.sem
				}(j)
			}
			wg.Wait()
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	computed := make(map[string]*montecarlo.Estimate, len(jobs))
	c.mu.Lock()
	for j := range jobs {
		if ests[j] == nil {
			continue // pruned: valid only against this call's thresholds
		}
		c.cache[memoKey{jobs[j].key, h}] = ests[j]
		computed[jobs[j].key] = ests[j]
	}
	c.mu.Unlock()
	for i := range out {
		if out[i] == nil {
			out[i] = computed[keys[i]]
		}
	}
	return out, nil
}

// denseResult pairs a dense assignment with its estimate.
type denseResult struct {
	assign []int
	est    *montecarlo.Estimate
}

// solveHour solves one hour of the compiled window.
func (c *search) solveHour(h int) (Result, error) {
	homeAssign := c.snap.HomeAssign()
	homeEst, err := c.estimate(homeAssign, h)
	if err != nil {
		return Result{}, err
	}
	home := denseResult{homeAssign, homeEst}
	var best denseResult
	if c.space <= exhaustiveCutoff {
		best, err = c.solveExhaustive(h, home)
	} else {
		best, err = c.solveHBSS(h, home)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{c.snap.PlanOf(best.assign), best.est}, nil
}

// solveAllHours fans the hourly solves across goroutines. Hour
// coordinators hold no evaluation slots — the shared semaphore bounds
// actual Monte Carlo work at the configured worker count — and each
// hour's outcome is independent of the others, so the fan-out cannot
// perturb results.
func (c *search) solveAllHours() ([]Result, error) {
	n := c.snap.NumHours()
	results := make([]Result, n)
	errs := make([]error, n)
	if c.s.workers <= 1 {
		for h := 0; h < n; h++ {
			results[h], errs[h] = c.solveHour(h)
		}
	} else {
		var wg sync.WaitGroup
		for h := 0; h < n; h++ {
			wg.Add(1)
			go func(h int) {
				defer wg.Done()
				results[h], errs[h] = c.solveHour(h)
			}(h)
		}
		wg.Wait()
	}
	for h, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("hour %d: %w", h, err)
		}
	}
	return results, nil
}

// solveExhaustive enumerates the full plan space in odometer order (the
// same order as the pre-snapshot recursive walk), evaluates every plan
// through the pool, and picks the winner by a sequential scan in
// enumeration order.
func (c *search) solveExhaustive(h int, home denseResult) (denseResult, error) {
	var all [][]int
	cur := make([]int, len(c.elig))
	var walk func(i int)
	walk = func(i int) {
		if i == len(c.elig) {
			all = append(all, append([]int(nil), cur...))
			return
		}
		for _, r := range c.elig[i] {
			cur[i] = r
			walk(i + 1)
		}
	}
	walk(0)
	// The winner is the argmin starting from home, so any candidate whose
	// priority metric provably exceeds the home metric (plus the bound
	// slack margin) can be abandoned mid-sweep: best only improves on
	// home, hence a pruned candidate can never be the final argmin.
	mHome := metricOf(home.est, c.s.obj.Priority)
	cut := mHome + pruneMargin*math.Abs(mHome)
	thr := make([]float64, len(all))
	for i := range thr {
		thr[i] = cut
	}
	ests, err := c.evalAllPruned(nil, nil, all, h, thr)
	if err != nil {
		return denseResult{}, err
	}
	best := home
	for i, est := range ests {
		if est == nil {
			continue // pruned: metric above the home baseline
		}
		if c.s.violates(est, home.est) {
			continue
		}
		if metricOf(est, c.s.obj.Priority) < metricOf(best.est, c.s.obj.Priority) {
			best = denseResult{all[i], est}
		}
	}
	return best, nil
}

// rankedEligible orders each stage's eligible regions by ascending grid
// intensity at hour h — the greedy heuristic HBSS biases toward. The
// ranking reads the snapshot's pre-resolved intensity table, sorts with
// sort.Slice (region index breaks ties, keeping the order total and
// deterministic), and is computed once per (stage, hour), shared by every
// HBSS iteration of that hour.
func (c *search) rankedEligible(h int) [][]int {
	out := make([][]int, len(c.elig))
	for i, elig := range c.elig {
		rs := append([]int(nil), elig...)
		sort.Slice(rs, func(a, b int) bool {
			va, vb := c.snap.IntensityIdx(h, rs[a]), c.snap.IntensityIdx(h, rs[b])
			if va != vb {
				return va < vb
			}
			return rs[a] < rs[b]
		})
		out[i] = rs
	}
	return out
}
