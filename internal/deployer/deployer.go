// Package deployer implements Caribou's Deployment Utility and Deployment
// Migrator (§6.1): initial deployment of every stage to the home region,
// cross-region re-deployment by replicating container images between
// regional registries (crane-style, no rebuild), all-or-nothing activation
// of new deployment plans through the distributed KV store, fallback to
// the home deployment when any step fails, and periodic retry of
// non-activated rollouts.
package deployer

import (
	"fmt"
	"time"

	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/telemetry"
)

// storedPlans is the KV representation of an active plan set.
type storedPlans struct {
	Hourly [24]map[dag.NodeID]region.ID `json:"hourly"`
	Expiry time.Time                    `json:"expiry"`
}

// Deployer manages one workflow's deployments.
type Deployer struct {
	eng *executor.Engine
	p   *platform.Platform
	// FailDeploy, when set, injects deployment failures (tests and
	// failure-mode experiments): returning true fails that step.
	FailDeploy func(node dag.NodeID, r region.ID) bool

	key            string
	active         *storedPlans // cache of the KV value
	migratedBytes  float64
	rollouts       int
	failedRollouts int
	pendingPlans   *dag.HourlyPlans // staged for retry after a failure
	pendingExpiry  time.Time

	tel deployerTelemetry
}

// deployerTelemetry holds instrument handles captured at construction;
// nil-safe no-ops when telemetry is off. Deployment state transitions are
// rare, so each also emits a flight-recorder event stamped with simclock
// time.
type deployerTelemetry struct {
	rec      *telemetry.Recorder
	rollouts *telemetry.Counter
	failed   *telemetry.Counter
}

func newDeployerTelemetry() deployerTelemetry {
	rec := telemetry.Default()
	return deployerTelemetry{
		rec:      rec,
		rollouts: rec.Counter("deployer.rollouts"),
		failed:   rec.Counter("deployer.rollouts_failed"),
	}
}

// New returns a deployer for the engine's workflow.
func New(eng *executor.Engine, p *platform.Platform) *Deployer {
	return &Deployer{
		eng: eng,
		p:   p,
		key: "dp/" + eng.Workload().Name,
		tel: newDeployerTelemetry(),
	}
}

// InitialDeploy performs the first-time deployment of every stage to the
// home region and records the home plan as the (non-expiring) fallback.
func (d *Deployer) InitialDeploy() error {
	if err := d.eng.DeployHome(); err != nil {
		return fmt.Errorf("deployer: initial deploy: %w", err)
	}
	return nil
}

// Rollout deploys the union of regions referenced by the 24 hourly plans
// and activates them with the given expiry. If any function deployment
// fails, nothing is activated (traffic keeps flowing to the currently
// active plan or home) and the rollout is staged for retry. It returns
// the image bytes replicated across regions, the migration overhead the
// Deployment Manager charges against the carbon budget.
func (d *Deployer) Rollout(plans dag.HourlyPlans, expiry time.Time) (float64, error) {
	d.rollouts++
	d.tel.rollouts.Inc()
	var moved float64
	for _, plan := range plans {
		// Sorted stage order pins which deployment fails first and keeps
		// the migrated-byte accounting independent of map iteration order.
		for _, node := range plan.SortedNodes() {
			r := plan[node]
			if d.FailDeploy != nil && d.FailDeploy(node, r) {
				d.noteRolloutFailure(node, r)
				d.pendingPlans = &plans
				d.pendingExpiry = expiry
				return moved, fmt.Errorf("deployer: deployment of %s to %s failed; keeping previous plan active", node, r)
			}
			bytes, err := d.eng.EnsureDeployment(node, r)
			if err != nil {
				d.noteRolloutFailure(node, r)
				d.pendingPlans = &plans
				d.pendingExpiry = expiry
				return moved, fmt.Errorf("deployer: %s to %s: %w", node, r, err)
			}
			moved += bytes
		}
	}
	d.activate(plans, expiry)
	d.migratedBytes += moved
	d.pendingPlans = nil
	return moved, nil
}

func (d *Deployer) noteRolloutFailure(node dag.NodeID, r region.ID) {
	d.failedRollouts++
	d.tel.failed.Inc()
	d.tel.rec.Event("deployer.rollout_failed", d.p.Scheduler().Now(),
		telemetry.String("workflow", d.eng.Workload().Name),
		telemetry.String("node", string(node)),
		telemetry.String("region", string(r)))
}

func (d *Deployer) activate(plans dag.HourlyPlans, expiry time.Time) {
	d.tel.rec.Event("deployer.activate", d.p.Scheduler().Now(),
		telemetry.String("workflow", d.eng.Workload().Name),
		telemetry.Time("expiry", expiry))
	sp := &storedPlans{Expiry: expiry}
	for h, plan := range plans {
		m := make(map[dag.NodeID]region.ID, len(plan))
		for n, r := range plan {
			m[n] = r
		}
		sp.Hourly[h] = m
	}
	if err := d.p.KV().PutJSON(d.key, sp); err != nil {
		// Marshaling static types cannot fail; treat as programming error.
		panic(err)
	}
	d.active = sp
}

// RetryPending re-attempts a staged rollout, if any (§6.1: the Migrator
// periodically retries the rollout of any non-activated DP).
func (d *Deployer) RetryPending() error {
	if d.pendingPlans == nil {
		return nil
	}
	plans, expiry := *d.pendingPlans, d.pendingExpiry
	_, err := d.Rollout(plans, expiry)
	return err
}

// HasPending reports whether a failed rollout awaits retry.
func (d *Deployer) HasPending() bool { return d.pendingPlans != nil }

// Expire deactivates the current plan set, routing all traffic home
// (§5.2: when a token check is due, the pre-determined deployment is
// expired).
func (d *Deployer) Expire() {
	d.tel.rec.Event("deployer.expire", d.p.Scheduler().Now(),
		telemetry.String("workflow", d.eng.Workload().Name))
	d.p.KV().Delete(d.key)
	d.active = nil
}

// ActivePlan implements executor.PlanSource: the hourly plan currently in
// effect, or nil (home) when none is active or the set has expired.
func (d *Deployer) ActivePlan(now time.Time) dag.Plan {
	if d.active == nil {
		var sp storedPlans
		ok, err := d.p.KV().GetJSON(d.key, &sp)
		if err != nil || !ok {
			return nil
		}
		d.active = &sp
	}
	if !d.active.Expiry.IsZero() && now.After(d.active.Expiry) {
		return nil
	}
	m := d.active.Hourly[now.UTC().Hour()]
	if m == nil {
		return nil
	}
	plan := make(dag.Plan, len(m))
	for n, r := range m {
		plan[n] = r
	}
	return plan
}

// HasActive reports whether a non-expired plan set is active at now.
func (d *Deployer) HasActive(now time.Time) bool { return d.ActivePlan(now) != nil }

// Stats reports rollout counts and cumulative migrated image bytes.
func (d *Deployer) Stats() (rollouts, failed int, migratedBytes float64) {
	return d.rollouts, d.failedRollouts, d.migratedBytes
}

var _ executor.PlanSource = (*Deployer)(nil)
