package deployer

import (
	"testing"
	"time"

	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/netmodel"
	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/workloads"
)

var t0 = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

func newStack(t *testing.T) (*platform.Platform, *executor.Engine, *Deployer, *workloads.Workload) {
	t.Helper()
	sched := simclock.New(t0)
	cat := region.NorthAmerica()
	p, err := platform.New(platform.Options{Sched: sched, Catalogue: cat, Net: netmodel.New(cat), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl := workloads.Text2SpeechCensoring()
	eng, err := executor.New(executor.Options{Platform: p, Workload: wl, Home: region.USEast1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := New(eng, p)
	if err := d.InitialDeploy(); err != nil {
		t.Fatal(err)
	}
	return p, eng, d, wl
}

func TestInitialDeployCoversAllStagesAtHome(t *testing.T) {
	p, _, _, wl := newStack(t)
	for _, n := range wl.DAG.Nodes() {
		ref := platform.FunctionRef{Workflow: wl.Name, Node: n, Region: region.USEast1}
		if !p.IsDeployed(ref) {
			t.Errorf("stage %s not deployed at home", n)
		}
	}
}

func TestRolloutActivatesAndRoutes(t *testing.T) {
	p, _, d, wl := newStack(t)
	plan := dag.NewHomePlan(wl.DAG, region.USEast1)
	plan["profanity"] = region.CACentral1
	plans := dag.Uniform(plan)
	expiry := t0.Add(24 * time.Hour)

	moved, err := d.Rollout(plans, expiry)
	if err != nil {
		t.Fatal(err)
	}
	if moved <= 0 {
		t.Error("image replication bytes not reported")
	}
	if !p.IsDeployed(platform.FunctionRef{Workflow: wl.Name, Node: "profanity", Region: region.CACentral1}) {
		t.Error("remote deployment missing after rollout")
	}
	got := d.ActivePlan(t0.Add(time.Hour))
	if got == nil || got["profanity"] != region.CACentral1 {
		t.Errorf("active plan = %v", got)
	}
	if !d.HasActive(t0.Add(time.Hour)) {
		t.Error("HasActive false")
	}
	// After expiry: home fallback.
	if d.ActivePlan(expiry.Add(time.Minute)) != nil {
		t.Error("expired plan still active")
	}
}

func TestRolloutFailureKeepsFallbackAndRetries(t *testing.T) {
	_, _, d, wl := newStack(t)
	plan := dag.NewHomePlan(wl.DAG, region.CACentral1)
	plans := dag.Uniform(plan)

	fail := true
	d.FailDeploy = func(node dag.NodeID, r region.ID) bool {
		return fail && r == region.CACentral1 && node == "compress"
	}
	if _, err := d.Rollout(plans, t0.Add(24*time.Hour)); err == nil {
		t.Fatal("want rollout failure")
	}
	if d.ActivePlan(t0.Add(time.Hour)) != nil {
		t.Error("failed rollout must not activate")
	}
	if !d.HasPending() {
		t.Error("failed rollout should stage a retry")
	}

	// The Migrator retries and succeeds once the failure clears.
	fail = false
	if err := d.RetryPending(); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if d.HasPending() {
		t.Error("pending not cleared after successful retry")
	}
	got := d.ActivePlan(t0.Add(time.Hour))
	if got == nil || got["compress"] != region.CACentral1 {
		t.Errorf("plan after retry = %v", got)
	}
	rollouts, failed, _ := d.Stats()
	if rollouts != 2 || failed != 1 {
		t.Errorf("rollouts=%d failed=%d", rollouts, failed)
	}
}

func TestRetryPendingNoopWithoutFailure(t *testing.T) {
	_, _, d, _ := newStack(t)
	if err := d.RetryPending(); err != nil {
		t.Errorf("noop retry errored: %v", err)
	}
}

func TestExpireRoutesHome(t *testing.T) {
	_, _, d, wl := newStack(t)
	plans := dag.Uniform(dag.NewHomePlan(wl.DAG, region.USEast1))
	if _, err := d.Rollout(plans, t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.ActivePlan(t0) == nil {
		t.Fatal("plan should be active")
	}
	d.Expire()
	if d.ActivePlan(t0) != nil {
		t.Error("expired plan still served")
	}
}

func TestHourlyPlanSelection(t *testing.T) {
	_, _, d, wl := newStack(t)
	var plans dag.HourlyPlans
	for h := 0; h < 24; h++ {
		p := dag.NewHomePlan(wl.DAG, region.USEast1)
		if h >= 12 {
			p = dag.NewHomePlan(wl.DAG, region.USWest2)
		}
		plans[h] = p
	}
	if _, err := d.Rollout(plans, t0.Add(48*time.Hour)); err != nil {
		t.Fatal(err)
	}
	morning := d.ActivePlan(t0.Add(6 * time.Hour))
	evening := d.ActivePlan(t0.Add(18 * time.Hour))
	if morning["validate"] != region.USEast1 {
		t.Errorf("morning plan = %v", morning["validate"])
	}
	if evening["validate"] != region.USWest2 {
		t.Errorf("evening plan = %v", evening["validate"])
	}
}

func TestMigratedBytesAccumulate(t *testing.T) {
	_, _, d, wl := newStack(t)
	plan := dag.NewHomePlan(wl.DAG, region.USWest2)
	if _, err := d.Rollout(dag.Uniform(plan), t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	_, _, bytes := d.Stats()
	if bytes != wl.ImageBytes {
		t.Errorf("migrated = %v, want one image copy %v", bytes, wl.ImageBytes)
	}
	// Rolling out to the same region again copies nothing.
	if _, err := d.Rollout(dag.Uniform(plan), t0.Add(48*time.Hour)); err != nil {
		t.Fatal(err)
	}
	_, _, bytes2 := d.Stats()
	if bytes2 != bytes {
		t.Errorf("second rollout copied images again: %v", bytes2)
	}
}
